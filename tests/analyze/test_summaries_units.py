"""Unit tests for the interprocedural summary layer (tools/analyze/
summaries.py) over hand-built CFGs — no libclang required.

These pin the transfer-relation semantics the interprocedural wire-taint
rule relies on: intrinsic vs guarded return taint, parameter-to-return
flow, parameter-to-sink facts net of intrinsic hits, specialization of
caller CFGs (both directions: de-tainting proven-guarded calls and
synthesizing callee sinks with via chains), the monotone merge, bounded
recursive convergence, and the round-level summary cache.
"""

import os
import sys
import unittest

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "analyze",
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import engine  # noqa: E402
from engine import CallFact, Cfg, Def, Guard, Sink, Stmt  # noqa: E402
import summaries  # noqa: E402
from callgraph import FunctionCfg  # noqa: E402

RET = engine.RETURN_PATH


def _fn(name, cfg, params=(), file="f.cpp", line=1):
    return FunctionCfg(name=name, file=file, line=line, cfg=cfg,
                       params=tuple(params))


def _subscript(*paths):
    return Sink(kind="subscript", desc="table[%s]" % ",".join(paths),
                paths=paths)


def _returns_read_cfg():
    """unsigned f(r) { return r.read(16); }"""
    cfg = Cfg()
    cfg.add(Stmt(sid=1, defs=(Def(path=RET, has_source=True,
                                  source_desc="BitReader::read"),)))
    return cfg


class ReturnTaintTest(unittest.TestCase):
    def test_intrinsic_source_taints_the_return(self):
        s = summaries.compute_summary(_fn("f", _returns_read_cfg()), {})
        self.assertTrue(s.ret_tainted)
        self.assertEqual(s.ret_source_desc, "BitReader::read")
        self.assertFalse(s.truncated)

    def test_guarded_return_is_clean(self):
        # n = read; if (n >= kMax) return 0; return n;  — the early exit
        # kills n on the fall-through edge, so the summary must NOT mark
        # the return tainted (the frameSize() shape behind the deleted
        # wire.cpp ALLOWs).
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(Def(path="n", has_source=True,
                                      source_desc="BitReader::read"),)))
        cfg.add(Stmt(sid=2, uses=("n",),
                     guards=(Guard(kills=("n",), edge="false"),)))
        cfg.add(Stmt(sid=3, defs=(Def(path=RET),)))          # return 0
        cfg.add(Stmt(sid=4, defs=(Def(path=RET, uses=("n",)),)))  # return n
        cfg.edge(1, 2)
        cfg.edge(2, 3, "true")
        cfg.edge(2, 4, "false")
        s = summaries.compute_summary(_fn("f", cfg), {})
        self.assertFalse(s.ret_tainted)

    def test_param_flows_to_return(self):
        # f(p) { return p; } — clean intrinsically, tainted when seeded.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(Def(path=RET, uses=("p",)),)))
        s = summaries.compute_summary(_fn("f", cfg, params=("p",)), {})
        self.assertFalse(s.ret_tainted)
        self.assertEqual(s.ret_from_params, (0,))


class ParamSinkTest(unittest.TestCase):
    def test_param_reaching_sink_is_recorded(self):
        # f(table, idx) { return table[idx]; }
        cfg = Cfg()
        cfg.add(Stmt(sid=1, uses=("idx",), sinks=(_subscript("idx"),),
                     line=7))
        s = summaries.compute_summary(
            _fn("f", cfg, params=("table", "idx")), {})
        self.assertEqual(len(s.param_sinks), 1)
        ps = s.param_sinks[0]
        self.assertEqual((ps.param, ps.kind, ps.line), (1, "subscript", 7))

    def test_intrinsic_hit_is_not_blamed_on_params(self):
        # f(p) { idx = read; table[idx]; } — fires with or without the
        # seed, so it is the function's own bug, not a parameter fact.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(Def(path="idx", has_source=True,
                                      source_desc="BitReader::read"),)))
        cfg.add(Stmt(sid=2, uses=("idx",), sinks=(_subscript("idx"),)))
        cfg.edge(1, 2)
        s = summaries.compute_summary(_fn("f", cfg, params=("p",)), {})
        self.assertEqual(s.param_sinks, ())

    def test_guarded_param_produces_no_sink_fact(self):
        # f(table, idx) { if (idx >= kMax) return 0; return table[idx]; }
        cfg = Cfg()
        cfg.add(Stmt(sid=1, uses=("idx",),
                     guards=(Guard(kills=("idx",), edge="false"),)))
        cfg.add(Stmt(sid=2, defs=(Def(path=RET),)))
        cfg.add(Stmt(sid=3, uses=("idx",), sinks=(_subscript("idx"),),
                     defs=(Def(path=RET, uses=("idx",)),)))
        cfg.edge(1, 2, "true")
        cfg.edge(1, 3, "false")
        s = summaries.compute_summary(
            _fn("f", cfg, params=("table", "idx")), {})
        self.assertEqual(s.param_sinks, ())
        self.assertEqual(s.ret_from_params, ())


class SpecializeTest(unittest.TestCase):
    def _caller_cfg(self):
        """idx = helper(r); table[idx];"""
        cfg = Cfg()
        cfg.add(Stmt(sid=1,
                     defs=(Def(path="idx", uses=("r",),
                               from_call="helper"),),
                     calls=(CallFact(callee="helper",
                                     args=((("r",), False),)),)))
        cfg.add(Stmt(sid=2, uses=("idx",), sinks=(_subscript("idx"),)))
        cfg.edge(1, 2)
        return cfg

    def test_tainted_return_summary_taints_the_caller(self):
        table = {"helper": summaries.FunctionSummary(
            name="helper", ret_tainted=True,
            ret_source_desc="BitReader::read")}
        solved = engine.solve_taint(summaries.specialize(
            self._caller_cfg(), table))
        self.assertEqual(len(solved.hits), 1)

    def test_clean_return_summary_detaints_the_caller(self):
        # With a summary proving the return guarded, the conservative
        # all-args def is REPLACED: no taint, no hit. This is the
        # false-positive-removal direction the ALLOW burn-down uses.
        table = {"helper": summaries.FunctionSummary(name="helper")}
        solved = engine.solve_taint(summaries.specialize(
            self._caller_cfg(), table))
        self.assertEqual(solved.hits, [])

    def test_unsummarized_call_keeps_the_conservative_def(self):
        cfg = summaries.specialize(self._caller_cfg(),
                                   {"other": summaries.FunctionSummary(
                                       name="other")})
        d = cfg.nodes[1].stmt.defs[0]
        self.assertEqual(d.uses, ("r",))

    def test_callee_sink_synthesized_at_call_site_with_via(self):
        # idx = read; sink_fn(table, idx);  — the callee's parameter-sink
        # fact becomes a caller-side sink carrying the chain step.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(Def(path="idx", has_source=True,
                                      source_desc="BitReader::read"),)))
        cfg.add(Stmt(sid=2, uses=("idx",),
                     calls=(CallFact(callee="sink_fn",
                                     args=((("table",), False),
                                           (("idx",), False))),)))
        cfg.edge(1, 2)
        table = {"sink_fn": summaries.FunctionSummary(
            name="sink_fn", file="h.cpp", line=5,
            params=("table", "idx"),
            param_sinks=(summaries.ParamSink(
                param=1, kind="subscript", desc="table[i]", line=7),))}
        solved = engine.solve_taint(summaries.specialize(cfg, table))
        self.assertEqual(len(solved.hits), 1)
        hit = solved.hits[0]
        self.assertEqual(hit.sink.via, ("h.cpp:7: in sink_fn: table[i]",))
        self.assertIn("argument 2 of sink_fn()", hit.sink.desc)


class MergeTest(unittest.TestCase):
    def test_merge_is_a_monotone_union(self):
        a = summaries.FunctionSummary(
            name="f", ret_tainted=False, ret_from_params=(0,),
            param_sinks=(summaries.ParamSink(0, "subscript", "t[i]"),))
        b = summaries.FunctionSummary(
            name="f", ret_tainted=True, ret_source_desc="read",
            ret_from_params=(1,))
        m = summaries.merge_summaries(a, b)
        self.assertTrue(m.ret_tainted)
        self.assertEqual(m.ret_from_params, (0, 1))
        self.assertEqual(len(m.param_sinks), 1)
        # Merging again changes nothing (fixpoint-friendly).
        self.assertEqual(summaries.merge_summaries(m, b), m)

    def test_merge_none_returns_new(self):
        b = summaries.FunctionSummary(name="f", ret_tainted=True)
        self.assertEqual(summaries.merge_summaries(None, b), b)


class BuildSummariesTest(unittest.TestCase):
    def _two_hop(self):
        helper = _fn("helper", _returns_read_cfg(), file="a.cpp", line=1)
        caller_cfg = Cfg()
        caller_cfg.add(Stmt(
            sid=1,
            defs=(Def(path="idx", uses=("r",), from_call="helper"),),
            calls=(CallFact(callee="helper", args=((("r",), False),)),)))
        caller_cfg.add(Stmt(sid=2, uses=("idx",),
                            sinks=(_subscript("idx"),),
                            defs=(Def(path=RET, uses=("idx",)),)))
        caller_cfg.edge(1, 2)
        caller = _fn("caller", caller_cfg, file="a.cpp", line=10)
        return helper, caller

    def test_two_hop_flow_resolves_bottom_up(self):
        helper, caller = self._two_hop()
        table, stats = summaries.build_summaries([caller, helper])
        self.assertTrue(table["helper"].ret_tainted)
        solved = engine.solve_taint(
            summaries.specialize(caller.cfg, table))
        self.assertEqual(len(solved.hits), 1)
        self.assertEqual(stats.functions, 2)

    def test_recursive_cycle_converges_within_rounds(self):
        # rec(r, d) { if (d) return rec(r, d-1); return r.read(32); }
        cfg = Cfg()
        cfg.add(Stmt(sid=1, uses=("d",)))
        cfg.add(Stmt(sid=2,
                     defs=(Def(path=RET, from_call="rec"),),
                     calls=(CallFact(callee="rec",
                                     args=((("r",), False),
                                           (("d",), False))),)))
        cfg.add(Stmt(sid=3, defs=(Def(path=RET, has_source=True,
                                      source_desc="BitReader::read"),)))
        cfg.edge(1, 2, "true")
        cfg.edge(1, 3, "false")
        rec = _fn("rec", cfg, params=("r", "d"))
        table, stats = summaries.build_summaries([rec])
        self.assertTrue(table["rec"].ret_tainted)
        self.assertLessEqual(stats.rounds, 4)

    def test_fixpoint_reuses_cached_summaries(self):
        # Round 2 recomputes nothing: every function's callee summaries
        # are unchanged, so the cache answers and the loop stops.
        helper, caller = self._two_hop()
        table, stats = summaries.build_summaries([caller, helper])
        self.assertGreaterEqual(stats.cache_hits, 2)
        self.assertEqual(stats.rounds, 2)

    def test_compute_summary_cache_key_includes_deps(self):
        helper, caller = self._two_hop()
        cache = summaries.SummaryCache()
        s1 = summaries.compute_summary(caller, {}, cache)
        s2 = summaries.compute_summary(caller, {}, cache)
        self.assertEqual(s1, s2)
        self.assertEqual((cache.hits, cache.misses), (1, 1))
        # A new helper summary changes the key: miss, and the result now
        # reflects the callee facts.
        table = {"helper": summaries.FunctionSummary(
            name="helper", ret_tainted=True, ret_source_desc="read")}
        s3 = summaries.compute_summary(caller, table, cache)
        self.assertEqual((cache.hits, cache.misses), (1, 2))
        self.assertFalse(s2.ret_tainted)
        self.assertTrue(s3.ret_tainted)  # helper's facts flowed through


if __name__ == "__main__":
    unittest.main()

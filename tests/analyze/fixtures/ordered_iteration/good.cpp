// ordered-iteration fixture: nothing here may be reported.

namespace std {

template <typename T>
struct vector {
  struct iterator {
    T* p;
    T& operator*() const { return *p; }
    iterator& operator++() {
      ++p;
      return *this;
    }
    bool operator!=(const iterator& o) const { return p != o.p; }
  };
  iterator begin() const { return iterator{nullptr}; }
  iterator end() const { return iterator{nullptr}; }
};

template <typename T>
struct unordered_set {
  bool contains(const T& v) const {
    (void)v;
    return false;
  }
};

}  // namespace std

int sumGood(const std::vector<int>& xs) {
  int total = 0;
  for (int x : xs) total += x;  // OK: vector iteration is ordered
  return total;
}

int lookupOnly(const std::unordered_set<int>& ids) {
  // OK: membership tests never observe iteration order.
  return ids.contains(42) ? 1 : 0;
}

// ordered-iteration fixture: both range-fors below must be reported. The
// stub containers live in namespace std so their canonical spellings match
// the real thing; the alias case is exactly what the old regex lint could
// not see and this rule exists to catch.

namespace std {

template <typename T>
struct unordered_set {
  struct iterator {
    T* p;
    T& operator*() const { return *p; }
    iterator& operator++() {
      ++p;
      return *this;
    }
    bool operator!=(const iterator& o) const { return p != o.p; }
  };
  iterator begin() const { return iterator{nullptr}; }
  iterator end() const { return iterator{nullptr}; }
};

}  // namespace std

int sumBad(const std::unordered_set<int>& ids) {
  int total = 0;
  for (int id : ids) total += id;  // BAD: unordered iteration order leaks
  return total;
}

using IdSet = std::unordered_set<unsigned>;

int sumAliasBad(const IdSet& ids) {
  int total = 0;
  // BAD: the alias hides the container textually, not from the type system.
  for (unsigned id : ids) total += static_cast<int>(id);
  return total;
}

// codec-bounds fixture: nothing here may be reported. Reads go through a
// bounded cursor (a stand-in for report::BitReader); the pointer-shaped
// expressions below are the ones the rule must NOT confuse with arithmetic.

struct BitReader {
  const unsigned char* bytes = nullptr;
  unsigned long size = 0;
  unsigned long pos = 0;
  bool okFlag = true;

  unsigned long read(unsigned bits);
  bool ok() const { return okFlag; }
};

unsigned decodeGood(BitReader& r) {
  const unsigned item = static_cast<unsigned>(r.read(32));
  const unsigned version = static_cast<unsigned>(r.read(32));
  if (!r.ok()) return 0;
  return item + version;  // OK: integer addition, not pointer arithmetic
}

void pointerShapesThatAreFine(BitReader& r) {
  const unsigned char* q = r.bytes;
  q = r.bytes;  // OK: plain pointer assignment (two pointer operands)
  (void)q;
  unsigned char scratch[4] = {0, 0, 0, 0};
  scratch[1] = 1;  // OK: subscript on a real array, not a pointer
  (void)scratch[1];
}

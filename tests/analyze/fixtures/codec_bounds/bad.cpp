// codec-bounds fixture: every marked expression below must be reported.
// This directory is in the rule's scope list alongside src/live/wire.* and
// src/report/.

extern "C" void* memcpy(void* dst, const void* src, unsigned long n);

unsigned decodeBadHeader(const unsigned char* data, unsigned long len) {
  if (len < 8) return 0;
  unsigned v = data[4];                // BAD: raw pointer subscript
  const unsigned char* p = data + 4;   // BAD: raw pointer arithmetic
  p += 2;                              // BAD: compound pointer arithmetic
  memcpy(&v, p, sizeof v);             // BAD: unchecked memcpy
  return v;
}

// codec-symmetry fixture: three asymmetric encode/decode pairs, one per
// divergence class. Message names are unique to this file so the findings
// cannot collide with the real wire messages.
//
// The rule is textual — this file never has to compile against the real
// headers, it only has to speak the BitWriter/BitReader codec idiom.

#include <cstdint>
#include <optional>
#include <vector>

namespace fix {

struct BitWriter {
  void write(std::uint64_t v, int bits);
  std::vector<std::uint8_t> finish();
};
struct BitReader {
  explicit BitReader(const std::vector<std::uint8_t>& b);
  std::uint64_t read(int bits);
  bool ok();
};

struct FixDropped {
  std::uint32_t alpha = 0;
  std::uint16_t beta = 0;
};

// BAD: the decoder never reads `beta` — a dropped field desyncs every
// later message on the stream.
std::vector<std::uint8_t> encodeFixDropped(const FixDropped& m) {
  BitWriter w;
  w.write(m.alpha, 32);
  w.write(m.beta, 16);
  return w.finish();
}

std::optional<FixDropped> decodeFixDropped(
    const std::vector<std::uint8_t>& payload) {
  BitReader r(payload);
  FixDropped m;
  m.alpha = static_cast<std::uint32_t>(r.read(32));
  if (!r.ok()) return std::nullopt;
  return m;
}

struct FixWidth {
  std::uint32_t gamma = 0;
};

// BAD: encoder writes 32 bits, decoder reads 16 — a width mismatch shears
// the field boundary.
std::vector<std::uint8_t> encodeFixWidth(const FixWidth& m) {
  BitWriter w;
  w.write(m.gamma, 32);
  return w.finish();
}

std::optional<FixWidth> decodeFixWidth(
    const std::vector<std::uint8_t>& payload) {
  BitReader r(payload);
  FixWidth m;
  m.gamma = static_cast<std::uint32_t>(r.read(16));
  if (!r.ok()) return std::nullopt;
  return m;
}

struct FixReorder {
  std::uint16_t first = 0;
  std::uint16_t second = 0;
};

// BAD: same fields, same widths, opposite order.
std::vector<std::uint8_t> encodeFixReorder(const FixReorder& m) {
  BitWriter w;
  w.write(m.first, 16);
  w.write(m.second, 16);
  return w.finish();
}

std::optional<FixReorder> decodeFixReorder(
    const std::vector<std::uint8_t>& payload) {
  BitReader r(payload);
  FixReorder m;
  m.second = static_cast<std::uint16_t>(r.read(16));
  m.first = static_cast<std::uint16_t>(r.read(16));
  if (!r.ok()) return std::nullopt;
  return m;
}

struct FixSub {
  std::uint32_t v = 0;
  auto encodeTo(BitWriter& w) const -> void;
  static auto decodeFrom(BitReader& r) -> std::optional<FixSub>;
};

struct FixSubDropped {
  FixSub fixSub;
  std::uint32_t tail = 0;
};

// BAD: the encoder delegates a whole submessage (the MapUpdate shape) but
// the decoder never re-enters through FixSub::decodeFrom — every field of
// the embedded message shears into `tail`.
std::vector<std::uint8_t> encodeFixSubDropped(const FixSubDropped& m) {
  BitWriter w;
  m.fixSub.encodeTo(w);
  w.write(m.tail, 32);
  return w.finish();
}

std::optional<FixSubDropped> decodeFixSubDropped(
    const std::vector<std::uint8_t>& payload) {
  BitReader r(payload);
  FixSubDropped m;
  m.tail = static_cast<std::uint32_t>(r.read(32));
  if (!r.ok()) return std::nullopt;
  return m;
}

}  // namespace fix

// codec-symmetry fixture: a fully symmetric pair, including a repeated
// group whose count field links to the loop — the rule must stay quiet.

#include <cstdint>
#include <optional>
#include <vector>

namespace fix {

struct BitWriter {
  void write(std::uint64_t v, int bits);
  std::vector<std::uint8_t> finish();
};
struct BitReader {
  explicit BitReader(const std::vector<std::uint8_t>& b);
  std::uint64_t read(int bits);
  bool ok();
};

struct FixSymmetric {
  std::uint32_t alpha = 0;
  std::uint16_t beta = 0;
  std::vector<std::uint32_t> items;
};

std::vector<std::uint8_t> encodeFixSymmetric(const FixSymmetric& m) {
  BitWriter w;
  w.write(m.alpha, 32);
  w.write(m.beta, 16);
  w.write(m.items.size(), 16);
  for (std::uint32_t item : m.items) w.write(item, 32);
  return w.finish();
}

std::optional<FixSymmetric> decodeFixSymmetric(
    const std::vector<std::uint8_t>& payload) {
  BitReader r(payload);
  FixSymmetric m;
  m.alpha = static_cast<std::uint32_t>(r.read(32));
  m.beta = static_cast<std::uint16_t>(r.read(16));
  const std::uint64_t count = r.read(16);
  m.items.reserve(count);
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    m.items.push_back(static_cast<std::uint32_t>(r.read(32)));
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

}  // namespace fix

// codec-symmetry fixture: a fully symmetric pair, including a repeated
// group whose count field links to the loop — the rule must stay quiet.

#include <cstdint>
#include <optional>
#include <vector>

namespace fix {

struct BitWriter {
  void write(std::uint64_t v, int bits);
  std::vector<std::uint8_t> finish();
};
struct BitReader {
  explicit BitReader(const std::vector<std::uint8_t>& b);
  std::uint64_t read(int bits);
  bool ok();
  bool fits(std::uint64_t count, int bitsEach);
};

struct FixSymmetric {
  std::uint32_t alpha = 0;
  std::uint16_t beta = 0;
  std::vector<std::uint32_t> items;
};

std::vector<std::uint8_t> encodeFixSymmetric(const FixSymmetric& m) {
  BitWriter w;
  w.write(m.alpha, 32);
  w.write(m.beta, 16);
  w.write(m.items.size(), 16);
  for (std::uint32_t item : m.items) w.write(item, 32);
  return w.finish();
}

std::optional<FixSymmetric> decodeFixSymmetric(
    const std::vector<std::uint8_t>& payload) {
  BitReader r(payload);
  FixSymmetric m;
  m.alpha = static_cast<std::uint32_t>(r.read(32));
  m.beta = static_cast<std::uint16_t>(r.read(16));
  const std::uint64_t count = r.read(16);
  m.items.reserve(count);
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    m.items.push_back(static_cast<std::uint32_t>(r.read(32)));
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

// Submessage delegation, the MapUpdate shape: the encoder hands the whole
// field to its encodeTo and the decoder re-enters through a one-line
// Type::decodeFrom assignment. Both sides resolve to the same field name
// ("fixMap"), so the rule must pair them and stay quiet. The method
// declarations use trailing return types on purpose: spelled the classic
// way they would match the decoder-definition regex and register a
// phantom message.
struct FixMap {
  std::uint32_t version = 0;
  auto encodeTo(BitWriter& w) const -> void;
  static auto decodeFrom(BitReader& r) -> std::optional<FixMap>;
};

struct FixMapWrap {
  FixMap fixMap;
};

std::vector<std::uint8_t> encodeFixMapWrap(const FixMapWrap& m) {
  BitWriter w;
  m.fixMap.encodeTo(w);
  return w.finish();
}

std::optional<FixMapWrap> decodeFixMapWrap(
    const std::vector<std::uint8_t>& payload) {
  BitReader r(payload);
  FixMapWrap m;
  auto map = FixMap::decodeFrom(r);
  if (!map || !r.ok()) return std::nullopt;
  m.fixMap = std::move(*map);
  return m;
}

// Length-prefixed wide-element stream, the Handoff shape: a 32-bit count
// fronting 64-bit elements behind a fits() guard. Symmetric; quiet.
struct FixStream {
  std::uint32_t item = 0;
  std::vector<std::uint64_t> times;
};

std::vector<std::uint8_t> encodeFixStream(const FixStream& m) {
  BitWriter w;
  w.write(m.item, 32);
  w.write(m.times.size(), 32);
  for (std::uint64_t t : m.times) w.write(t, 64);
  return w.finish();
}

std::optional<FixStream> decodeFixStream(
    const std::vector<std::uint8_t>& payload) {
  BitReader r(payload);
  FixStream m;
  m.item = static_cast<std::uint32_t>(r.read(32));
  const std::uint64_t count = r.read(32);
  if (!r.fits(count, 64)) return std::nullopt;
  m.times.reserve(count);
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    m.times.push_back(r.read(64));
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

}  // namespace fix

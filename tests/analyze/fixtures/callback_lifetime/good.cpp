// callback-lifetime fixture: nothing here may be reported. Each class
// shows a sanctioned lifetime discipline: stored handles matched by
// destructor-reachable removeFd/cancelTimer calls, owner tagging retired
// in the destructor (directly or through a helper), value-only captures,
// free-function registrations, and owner-tagged nested registrations.

struct Callback {
  template <typename F>
  Callback(F) {}
};

struct Reactor {
  struct FdHandle {
    int fd;
  };
  struct TimerHandle {
    unsigned long long id;
  };
  using OwnerId = unsigned;
  OwnerId makeOwner();
  void retireOwner(OwnerId owner);
  FdHandle addFd(int fd, unsigned events, Callback cb, OwnerId owner = 0);
  TimerHandle addTimer(double delaySec, double periodSec, Callback cb,
                       OwnerId owner = 0);
  void removeFd(int fd);
  void cancelTimer(unsigned long long id);
};

// GOOD: handle discipline — both registrations are undone by name in the
// destructor.
struct HandleServer {
  Reactor& reactor_;
  Reactor::FdHandle reg_{-1};
  Reactor::TimerHandle timer_{0};
  int hits_ = 0;
  explicit HandleServer(Reactor& r) : reactor_(r) {
    reg_ = reactor_.addFd(3, 1, [this] { ++hits_; });
    timer_ = reactor_.addTimer(0.0, 1.0, [this] { ++hits_; });
  }
  ~HandleServer() {
    reactor_.cancelTimer(timer_.id);
    reactor_.removeFd(reg_.fd);
  }
};

// GOOD: owner discipline — the destructor reaches retireOwner through a
// shutdown helper (one hop on the call graph).
struct OwnerServer {
  Reactor& reactor_;
  Reactor::OwnerId owner_;
  int polls_ = 0;
  explicit OwnerServer(Reactor& r) : reactor_(r), owner_(r.makeOwner()) {
    reactor_.addFd(4, 1, [this] { ++polls_; }, owner_);
    reactor_.addTimer(0.5, 0.5, [this] { ++polls_; }, owner_);
  }
  void shutdown() { reactor_.retireOwner(owner_); }
  ~OwnerServer() { shutdown(); }
};

// GOOD: value-only capture — the callback owns a copy; nothing dangles
// even though the class has no destructor.
struct ValueCapture {
  Reactor& reactor_;
  explicit ValueCapture(Reactor& r, int seed) : reactor_(r) {
    reactor_.addTimer(1.0, 1.0, [seed] { (void)seed; });
  }
};

// GOOD: free-function registration — reactor and captures share one
// scope and die together; the *_main entry points look like this.
void runOnce(Reactor& r) {
  int spins = 0;
  r.addFd(6, 1, [&spins] { ++spins; });
  r.removeFd(6);
}

// GOOD: registration from inside a callback, vouched for by the OwnerId
// tag (and retired in the destructor).
struct NestedOwner {
  Reactor& reactor_;
  Reactor::OwnerId owner_;
  int events_ = 0;
  explicit NestedOwner(Reactor& r) : reactor_(r), owner_(r.makeOwner()) {
    reactor_.addTimer(
        0.0, 1.0,
        [this] { reactor_.addFd(7, 1, [this] { ++events_; }, owner_); },
        owner_);
  }
  ~NestedOwner() { reactor_.retireOwner(owner_); }
};

// callback-lifetime fixture: every marked registration below must be
// reported. Hermetic: the Reactor is a stand-in exposing the production
// surface the rule keys on — addFd/addTimer returning handles, an
// OwnerId tag, and removeFd/cancelTimer/retireOwner teardown calls.

struct Callback {
  template <typename F>
  Callback(F) {}
};

struct Reactor {
  struct FdHandle {
    int fd;
  };
  struct TimerHandle {
    unsigned long long id;
  };
  using OwnerId = unsigned;
  OwnerId makeOwner();
  void retireOwner(OwnerId owner);
  FdHandle addFd(int fd, unsigned events, Callback cb, OwnerId owner = 0);
  TimerHandle addTimer(double delaySec, double periodSec, Callback cb,
                       OwnerId owner = 0);
  void removeFd(int fd);
  void cancelTimer(unsigned long long id);
};

// BAD 1: `this` capture with the handle stored, but the destructor never
// removes the registration — the reactor keeps dispatching into a dead
// object.
struct LeakyServer {
  Reactor& reactor_;
  Reactor::FdHandle reg_{-1};
  int hits_ = 0;
  explicit LeakyServer(Reactor& r) : reactor_(r) {
    reg_ = reactor_.addFd(3, 1, [this] { ++hits_; });  // BAD
  }
  ~LeakyServer() {}  // forgets reactor_.removeFd(reg_.fd)
};

// BAD 2: handle discarded AND no OwnerId — nothing can ever deregister
// the callback.
struct FireAndForget {
  Reactor& reactor_;
  int ticks_ = 0;
  explicit FireAndForget(Reactor& r) : reactor_(r) {
    reactor_.addTimer(0.0, 1.0, [this] { ++ticks_; });  // BAD
  }
  ~FireAndForget() {}
};

// BAD 3: no destructor at all, so there is no teardown path to verify.
struct NoTeardown {
  Reactor& reactor_;
  Reactor::TimerHandle timer_{0};
  long count_ = 0;
  explicit NoTeardown(Reactor& r) : reactor_(r) {
    timer_ = reactor_.addTimer(1.0, 1.0, [this] { ++count_; });  // BAD
  }
};

// BAD 4: owner-tagged, but the destructor never calls retireOwner — the
// tag is decoration, not a lifetime proof.
struct ForgetsRetire {
  Reactor& reactor_;
  Reactor::OwnerId owner_;
  int polls_ = 0;
  explicit ForgetsRetire(Reactor& r)
      : reactor_(r), owner_(r.makeOwner()) {
    reactor_.addFd(4, 1, [this] { ++polls_; }, owner_);  // BAD
  }
  ~ForgetsRetire() {}  // never reactor_.retireOwner(owner_)
};

// BAD 5: registration made from inside another callback without an
// OwnerId — the capturing class is not statically known, so only the
// owner tag (and its runtime DCHECK) can vouch for the lifetime.
struct NestedRegistrar {
  Reactor& reactor_;
  Reactor::OwnerId owner_;
  int events_ = 0;
  explicit NestedRegistrar(Reactor& r)
      : reactor_(r), owner_(r.makeOwner()) {
    reactor_.addTimer(
        0.0, 1.0,
        [this] {
          reactor_.addFd(5, 1, [this] { ++events_; });  // BAD: no OwnerId
        },
        owner_);
  }
  ~NestedRegistrar() { reactor_.retireOwner(owner_); }
};

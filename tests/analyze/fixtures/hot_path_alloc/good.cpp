// hot-path-alloc fixture: nothing here may be reported.

#include "core/annotations.hpp"

struct Pool {
  int take();       // pops a recycled slot off a free list
  void put(int v);  // pushes it back
};

struct Scratch {
  void reserve(unsigned long n);
};

MCI_HOT int hotSteady(Pool& pool) {
  const int slot = pool.take();  // OK: free-list reuse, no growth names
  pool.put(slot);
  return slot;
}

MCI_HOT void hotWithJustifiedGrowth(Scratch& s) {
  // MCI-ANALYZE-ALLOW(hot-path-alloc): grows to the high-water mark once
  s.reserve(64);  // fires in the rule, filtered by the suppression above
}

// OK: allocates, but no MCI_HOT function reaches it.
int coldSetup() {
  int* p = new int(3);
  const int v = *p;
  delete p;
  return v;
}

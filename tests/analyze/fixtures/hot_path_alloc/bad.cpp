// hot-path-alloc fixture: every marked line below must be reported. Uses
// the real MCI_HOT macro (fixtures parse with -I src) so the annotation
// spelling is tested end to end.

#include "core/annotations.hpp"

struct Vec {
  void push_back(int v);
  int* data();
};

namespace {

int* growScratch() {
  return new int[16];  // BAD: 'new' one hop from an MCI_HOT root
}

}  // namespace

MCI_HOT int hotDirect() {
  int* p = new int(7);  // BAD: 'new' directly in an MCI_HOT function
  const int v = *p;
  delete p;
  return v;
}

MCI_HOT void hotTransitive(Vec& out) {
  out.push_back(1);  // BAD: growth-capable container call in hot code
  int* s = growScratch();
  (void)s;
}

// handler-coverage fixture: both defects below must be reported. The
// directive line tells the rule which schema directions terminate here
// (the real dispatch files get this from the built-in table instead).
//
// handler-coverage-receives: server -> client
//
// Defect 1: the schema also sends this endpoint a validity-reply frame
// (value 8), but there is no dispatch arm and no named opt-out below.
// Defect 2: the default-free switch handles a type the schema never
// named.

enum class FrameType : unsigned char {
  kWelcome = 2,
  kReport = 3,
  kDataItem = 5,
  kCheckAck = 7,
  kMapUpdate = 11,
  kLegacyPing = 99
};

struct Frame {
  FrameType type;
};

int dispatch(const Frame& f) {
  switch (f.type) {
    case FrameType::kWelcome:
      return 1;
    case FrameType::kReport:
      return 2;
    case FrameType::kDataItem:
      return 3;
    case FrameType::kCheckAck:
      return 4;
    case FrameType::kMapUpdate:
      return 5;
    case FrameType::kLegacyPing:  // BAD: the schema never named this type
      return 6;
    default:
      return 0;
  }
}

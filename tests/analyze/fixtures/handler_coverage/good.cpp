// handler-coverage fixture: nothing here may be reported. Every schema
// frame type addressed to this endpoint either has a dispatch arm (case
// label or header-type comparison) or is opted out by name next to the
// default arm.
//
// handler-coverage-receives: server -> client

enum class FrameType : unsigned char {
  kWelcome = 2,
  kReport = 3,
  kDataItem = 5,
  kCheckAck = 7,
  kValidityReply = 8,
  kMapUpdate = 11
};

struct Frame {
  FrameType type;
};

bool isAnnounce(const Frame& f) {
  // Comparison-style dispatch counts the same as a case label.
  return f.type == FrameType::kMapUpdate;
}

int dispatch(const Frame& f) {
  if (isAnnounce(f)) {
    return 5;
  }
  switch (f.type) {
    case FrameType::kWelcome:
      return 1;
    case FrameType::kReport:
      return 2;
    case FrameType::kDataItem:
      return 3;
    case FrameType::kCheckAck:
      return 4;
    default:
      // kValidityReply (checking schemes only) and anything else this
      // endpoint has no use for.
      return 0;
  }
}

// checked-return fixture: every marked statement below must be reported.
// The stub class names deliberately match the rule's watched (method,
// class) pairs; result types are primitive so the discarded call sits
// directly in statement position.

struct Frame {
  int type = 0;
};

struct FrameBuffer {
  Frame* next();
};

struct EventQueue {
  bool cancel(unsigned long id);
};

int decodeFrame(const unsigned char* data, unsigned long len);

void drainBad(FrameBuffer& fb, EventQueue& q, const unsigned char* d) {
  fb.next();          // BAD: dropped frame — silently unparsed input
  q.cancel(7);        // BAD: cancel may have missed; caller never knows
  decodeFrame(d, 8);  // BAD: decode result ignored
}

// checked-return fixture: nothing here may be reported.

struct Frame {
  int type = 0;
};

struct FrameBuffer {
  Frame* next();
};

struct EventQueue {
  bool cancel(unsigned long id);
};

int decodeFrame(const unsigned char* data, unsigned long len);

int drainGood(FrameBuffer& fb, EventQueue& q, const unsigned char* d) {
  int n = 0;
  while (Frame* f = fb.next()) {  // OK: result drives the loop
    ++n;
    (void)f;
  }
  if (!q.cancel(7)) ++n;              // OK: result tested
  const int rc = decodeFrame(d, 8);   // OK: result bound
  (void)fb.next();                    // OK: explicit, greppable opt-out
  return n + rc;
}

// reactor-blocking fixture: every marked call below must be reported.
//
// Hermetic: no system headers; the syscalls are declared by hand and the
// Reactor is a stand-in whose shape (name + addFd/addTimer taking a
// callable) is all the rule keys on.

extern "C" {
int usleep(unsigned microseconds);
int poll(void* fds, unsigned long count, int timeoutMs);
long recv(int fd, void* buf, unsigned long len, int flags);
}

struct Reactor {
  template <typename Fn>
  void addFd(int fd, Fn fn) {
    (void)fd;
    (void)fn;
  }
  template <typename Fn>
  void addTimer(double periodSec, Fn fn) {
    (void)periodSec;
    (void)fn;
  }
};

namespace {

// Reached transitively from the timer callback below.
void drainSocket(int fd) {
  char buf[64];
  recv(fd, buf, sizeof buf, 0);  // BAD: blocking recv, two hops from a root
}

}  // namespace

void setupBad(Reactor& r) {
  r.addFd(3, [](int fd) {
    usleep(1000);  // BAD: always-blocking call in an fd callback
    char b[8];
    recv(fd, b, sizeof b, 0);  // BAD: socket read without nonblock evidence
  });
  r.addTimer(0.5, [] {
    poll(nullptr, 0, 100);  // BAD: always-blocking call in a timer callback
    drainSocket(4);
  });
}

// reactor-blocking fixture: nothing here may be reported.

extern "C" {
int usleep(unsigned microseconds);
long recv(int fd, void* buf, unsigned long len, int flags);
}

#define MSG_DONTWAIT 0x40

struct Reactor {
  template <typename Fn>
  void addFd(int fd, Fn fn) {
    (void)fd;
    (void)fn;
  }
  template <typename Fn>
  void addTimer(double periodSec, Fn fn) {
    (void)periodSec;
    (void)fn;
  }
};

void setupGood(Reactor& r) {
  r.addFd(3, [](int fd) {
    char b[8];
    // OK: the flag on the call line is nonblocking evidence.
    recv(fd, b, sizeof b, MSG_DONTWAIT);
  });
  r.addTimer(0.5, [] {
    int ticks = 0;  // OK: pure computation
    ++ticks;
    (void)ticks;
  });
}

// OK: blocks, but is never registered with (nor reachable from) a Reactor
// callback — the main loop may sleep all it wants.
void idleOutsideReactor() { usleep(10); }

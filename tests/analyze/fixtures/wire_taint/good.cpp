// wire-taint fixture: nothing here may be reported. Each function shows a
// sanctioned sanitizer for a decoded value: a constant-bound comparison,
// MCI_CHECK, std::min clamping, and the BitReader fits() guard.

extern "C" void* memcpy(void* dst, const void* src, unsigned long n);

#define MCI_CHECK(cond) ((void)0)

constexpr unsigned long long kMaxItems = 1024;
constexpr unsigned long long kMaxLen = 4096;

namespace std {
template <typename T>
T min(T a, T b);
}

struct BitReader {
  unsigned long long read(int bits);
  bool ok();
  bool fits(unsigned long long count, int bitsEach);
};

struct Vec {
  void resize(unsigned long long n);
  void reserve(unsigned long long n);
  void push_back(unsigned v);
  unsigned& operator[](unsigned long long i);
  unsigned long long size();
};

// GOOD: index checked against a constant bound before every use on the
// guarded edge.
unsigned goodGuardedIndex(BitReader& r, Vec& table) {
  const unsigned long long idx = r.read(16);
  if (idx < kMaxItems) {
    return table[idx];
  }
  return 0;
}

// GOOD: early-exit guard kills the taint on the fallthrough edge.
unsigned goodEarlyExit(BitReader& r, Vec& table) {
  const unsigned long long idx = r.read(16);
  if (idx >= kMaxItems) return 0;
  return table[idx];
}

// GOOD: MCI_CHECK is a hard process-stop bound; the value is clean after.
void goodCheckedResize(BitReader& r, Vec& out) {
  const unsigned long long n = r.read(24);
  MCI_CHECK(n <= kMaxItems);
  out.resize(n);
}

// GOOD: std::min against a constant cap yields an untainted length.
void goodClampedMemcpy(BitReader& r, unsigned char* dst,
                       const unsigned char* src) {
  const unsigned long long len = r.read(32);
  const unsigned long long capped = std::min(len, kMaxLen);
  memcpy(dst, src, capped);
}

// GOOD: the fits() guard bounds the count by the physical frame size.
void goodFitsGuardedLoop(BitReader& r, Vec& out) {
  const unsigned long long count = r.read(16);
  if (!r.fits(count, 32)) return;
  out.reserve(count);
  for (unsigned long long i = 0; i < count; ++i) {
    out.push_back(static_cast<unsigned>(r.read(32)));
  }
}

// GOOD: the Handoff decode shape — a 32-bit stream count fronting 64-bit
// update times, bounded by fits() before the reserve and the loop.
void goodHandoffStream(BitReader& r, Vec& times) {
  const unsigned long long count = r.read(32);
  if (!r.fits(count, 64)) return;
  times.reserve(count);
  for (unsigned long long i = 0; i < count; ++i) {
    times.push_back(static_cast<unsigned>(r.read(64)));
  }
}

// -- interprocedural cases: the summary pass must PROVE these clean, not
// merely fail to see across the call edge. ---------------------------------

// Helper that guards its own return (the frameSize() shape): its summary
// records an untainted return, so callers need no local check.
unsigned long long readBoundedIndex(BitReader& r) {
  const unsigned long long n = r.read(16);
  if (n >= kMaxItems) return 0;
  return n;
}

// GOOD: the helper's summary proves the index bounded.
unsigned goodSummaryProvenIndex(BitReader& r, Vec& table) {
  const unsigned long long idx = readBoundedIndex(r);
  return table[idx];
}

// Helper that bounds its parameter before the sink: no parameter sink in
// the summary, so tainted arguments are fine.
unsigned guardedSinkHelper(Vec& table, unsigned long long idx) {
  if (idx >= kMaxItems) return 0;
  return table[idx];
}

// GOOD: the callee bounds the argument itself.
unsigned goodArgIntoGuardedHelper(BitReader& r, Vec& table) {
  const unsigned long long idx = r.read(16);
  return guardedSinkHelper(table, idx);
}

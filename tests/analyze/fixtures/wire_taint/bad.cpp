// wire-taint fixture: every commented BAD site below must produce exactly
// one finding. Hermetic: a stub BitReader stands in for report::BitReader
// (the rule keys on the receiver type name and the read/decode source
// vocabulary, not on the real headers).

extern "C" void* memcpy(void* dst, const void* src, unsigned long n);

#define MCI_CHECK(cond) ((void)0)

constexpr unsigned long long kMaxItems = 1024;

struct BitReader {
  unsigned long long read(int bits);
  bool ok();
  bool fits(unsigned long long count, int bitsEach);
};

struct Vec {
  void resize(unsigned long long n);
  void reserve(unsigned long long n);
  void push_back(unsigned v);
  unsigned& operator[](unsigned long long i);
  unsigned long long size();
};

unsigned shardOf(unsigned long long idx);

// BAD 1: decoded value used as a subscript with no guard at all.
unsigned badUnguardedIndex(BitReader& r, Vec& table) {
  const unsigned long long idx = r.read(16);
  return table[idx];  // tainted subscript
}

// BAD 2: guarded use inside the branch, then re-used unguarded after the
// branches rejoin — the kill only holds on the guarded edge.
unsigned badGuardedThenReused(BitReader& r, Vec& table) {
  const unsigned long long idx = r.read(16);
  unsigned first = 0;
  if (idx < kMaxItems) {
    first = table[idx];  // fine: guarded edge
  }
  return first + table[idx];  // tainted subscript after the join
}

// BAD 3: taint flows through a local copy; the sink names the copy but the
// chain leads back to the read.
void badTaintThroughCopy(BitReader& r, Vec& out) {
  const unsigned long long n = r.read(24);
  const unsigned long long total = n;
  out.resize(total);  // tainted size argument
}

// BAD 4: decoded length handed straight to memcpy.
void badMemcpyLength(BitReader& r, unsigned char* dst,
                     const unsigned char* src) {
  const unsigned long long len = r.read(32);
  memcpy(dst, src, len);  // tainted copy length
}

// BAD 5: decoded count bounds a loop with no fits()/constant guard.
void badLoopBound(BitReader& r, Vec& out) {
  const unsigned long long count = r.read(16);
  for (unsigned long long i = 0; i < count; ++i) {  // tainted loop bound
    out.push_back(static_cast<unsigned>(r.read(32)));
  }
}

// BAD 6: the Handoff stream shape, minus its guard — a 32-bit element
// count reserved straight off the wire. A lying count reserves gigabytes
// before the first element is even read.
void badHandoffReserve(BitReader& r, Vec& times) {
  const unsigned long long count = r.read(32);
  times.reserve(count);  // tainted reservation
}

// -- interprocedural cases: each flow crosses a call edge and is only
// visible through the per-function summaries. ------------------------------

// Helper whose return value is raw wire data; its summary taints callers.
unsigned long long readRawIndex(BitReader& r) { return r.read(16); }

// BAD 7: two-hop flow — the read happens in the helper, the sink here.
unsigned badTwoHopIndex(BitReader& r, Vec& table) {
  const unsigned long long idx = readRawIndex(r);
  return table[idx];  // tainted through the helper's summary
}

// Helper holding the sink; a tainted argument must fire at the call site.
unsigned sinkInHelper(Vec& table, unsigned long long idx) {
  return table[idx];
}

// BAD 8: the decode is here, the subscript one frame down.
unsigned badArgIntoHelperSink(BitReader& r, Vec& table) {
  const unsigned long long idx = r.read(16);
  return sinkInHelper(table, idx);  // tainted argument reaches callee sink
}

// Self-recursive helper: the bounded summary rounds must converge on the
// cycle and still see the base case's read.
unsigned long long readNestedValue(BitReader& r, int depth) {
  if (depth > 0) return readNestedValue(r, depth - 1);
  return r.read(32);
}

// BAD 9: taint surviving a recursive cycle in the call graph.
unsigned badRecursiveHelper(BitReader& r, Vec& table) {
  const unsigned long long idx = readNestedValue(r, 2);
  return table[idx];  // tainted through the recursive summary
}

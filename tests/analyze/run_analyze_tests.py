#!/usr/bin/env python3
"""Runs the mci-analyze self-tests: pytest when installed, unittest
otherwise.

CI installs pytest (tools/analyze/requirements.txt) and gets its reporting;
a bare container still runs the identical test classes through the stdlib
runner. Either way the engine/baseline/call-graph unit tests always run,
and the fixture-corpus tests skip themselves when libclang is missing.

Exit: 0 all passed (skips allowed), 1 failures, 2 collection error.
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> int:
    try:
        import pytest  # type: ignore

        return int(pytest.main(["-q", HERE]))
    except ImportError:
        pass

    import unittest

    loader = unittest.TestLoader()
    try:
        suite = loader.discover(HERE, pattern="test_*.py")
    except Exception as exc:  # pragma: no cover - discovery misconfig
        print("run_analyze_tests: discovery failed: %s" % exc,
              file=sys.stderr)
        return 2
    result = unittest.TextTestRunner(verbosity=1).run(suite)
    return 0 if result.wasSuccessful() else 1


if __name__ == "__main__":
    sys.exit(main())

"""Pytest bootstrap: make tools/analyze importable from the test modules.

The test files also do this themselves (so plain unittest discovery works
without pytest); keeping it here as well lets pytest collect them from any
rootdir.
"""

import os
import sys

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "analyze",
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

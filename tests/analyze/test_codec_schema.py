"""Unit tests for the codec-symmetry extractor (tools/analyze/codec_schema).

All pure text: the extractor, the comparator, the schema builder, and the
docs splicer, plus a run over the real tree asserting every wire message
round-trips symmetric — the same property the CTest drift gate enforces.
"""

import os
import sys
import unittest

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "analyze",
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import codec_schema  # noqa: E402

_REPO = os.path.dirname(os.path.dirname(_TOOLS))


def _extract(text):
    out = {}
    codec_schema.extract_text(text, out, "snippet.cpp")
    return out


_SYMMETRIC = """
std::vector<std::uint8_t> encodePing(const Ping& m) {
  report::BitWriter w;
  w.write(m.token, 32);
  w.write(m.flags, 8);
  return w.finish();
}
std::optional<Ping> decodePing(const std::vector<std::uint8_t>& payload) {
  report::BitReader r(payload);
  Ping m;
  m.token = static_cast<std::uint32_t>(r.read(32));
  m.flags = static_cast<std::uint8_t>(r.read(8));
  if (!r.ok()) return std::nullopt;
  return m;
}
"""


class ExtractionTest(unittest.TestCase):
    def test_simple_fields_with_names_and_widths(self):
        out = _extract(_SYMMETRIC)
        self.assertEqual(
            out["Ping"]["encode"],
            [{"name": "token", "bits": 32}, {"name": "flags", "bits": 8}])
        self.assertEqual(out["Ping"]["encode"], out["Ping"]["decode"])
        self.assertEqual(out["Ping"]["locs"]["encode"][0], "snippet.cpp")

    def test_repeated_group_links_count_to_loop(self):
        out = _extract("""
std::vector<std::uint8_t> encodeBatch(const Batch& m) {
  report::BitWriter w;
  w.write(m.items.size(), 16);
  for (db::ItemId item : m.items) w.write(item, 32);
  return w.finish();
}
std::optional<Batch> decodeBatch(const std::vector<std::uint8_t>& payload) {
  report::BitReader r(payload);
  Batch m;
  const std::uint64_t count = r.read(16);
  m.items.reserve(count);
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    m.items.push_back(static_cast<db::ItemId>(r.read(32)));
  }
  return m;
}
""")
        self.assertEqual(out["Batch"]["encode"], out["Batch"]["decode"])
        names = [f["name"] for f in out["Batch"]["encode"]]
        self.assertEqual(names, ["items.count", "items[]"])

    def test_submessage_wildcard_and_decoder_type(self):
        out = _extract("""
std::vector<std::uint8_t> encodeEnvelope(const Envelope& m) {
  report::BitWriter w;
  w.write(m.kind, 8);
  m.shardMap.encodeTo(w);
  return w.finish();
}
std::optional<Envelope> decodeEnvelope(
    const std::vector<std::uint8_t>& payload) {
  report::BitReader r(payload);
  Envelope m;
  m.kind = static_cast<std::uint8_t>(r.read(8));
  std::optional<ShardMap> map = ShardMap::decodeFrom(r);
  if (!map || !r.ok()) return std::nullopt;
  m.shardMap = std::move(*map);
  return m;
}
""")
        enc = out["Envelope"]["encode"]
        dec = out["Envelope"]["decode"]
        self.assertEqual(enc[1], {"name": "shardMap", "submessage": "*"})
        self.assertEqual(dec[1], {"name": "shardMap", "submessage": "ShardMap"})
        self.assertEqual(codec_schema.compare(out), [])
        schema = codec_schema.build_schema(out)
        self.assertEqual(
            schema["messages"]["Envelope"]["fields"][1]["submessage"],
            "ShardMap")  # wildcard grafted from the decoder

    def test_fits_and_skip_lines_are_not_fields(self):
        out = _extract("""
std::optional<Lean> decodeLean(const std::vector<std::uint8_t>& payload) {
  report::BitReader r(payload);
  Lean m;
  const std::uint64_t count = r.read(16);
  if (!r.fits(count, 32)) return std::nullopt;
  r.skip(8);
  return m;
}
""")
        # One pending count read; the fits() guard must not add a field.
        names = [f["name"] for f in out["Lean"]["decode"]]
        self.assertNotIn("fits", " ".join(names))


class CompareTest(unittest.TestCase):
    def _mutate(self, decode_repl):
        return _extract(_SYMMETRIC.replace(decode_repl[0], decode_repl[1]))

    def test_symmetric_pair_is_clean(self):
        self.assertEqual(codec_schema.compare(_extract(_SYMMETRIC)), [])

    def test_dropped_field_detected(self):
        out = self._mutate((
            "m.flags = static_cast<std::uint8_t>(r.read(8));", ""))
        problems = codec_schema.compare(out)
        self.assertEqual(len(problems), 1)
        self.assertIn("never reads", problems[0][1])

    def test_width_mismatch_detected(self):
        out = self._mutate(("r.read(8)", "r.read(16)"))
        problems = codec_schema.compare(out)
        self.assertIn("width mismatch", problems[0][1])

    def test_reorder_detected(self):
        out = _extract(_SYMMETRIC.replace(
            "m.token = static_cast<std::uint32_t>(r.read(32));\n"
            "  m.flags = static_cast<std::uint8_t>(r.read(8));",
            "m.flags = static_cast<std::uint8_t>(r.read(8));\n"
            "  m.token = static_cast<std::uint32_t>(r.read(32));"))
        problems = codec_schema.compare(out)
        self.assertIn("order/name diverges", problems[0][1])

    def test_one_sided_message_detected(self):
        out = {}
        codec_schema.extract_text("""
std::vector<std::uint8_t> encodeOrphan(const Orphan& m) {
  report::BitWriter w;
  w.write(m.x, 8);
  return w.finish();
}
""", out)
        problems = codec_schema.compare(out)
        self.assertEqual(problems, [("Orphan", "message has no decoder")])


class RealTreeTest(unittest.TestCase):
    """The production property: every message in src/live is symmetric and
    the checked-in schema/docs match the code exactly."""

    def setUp(self):
        self.extracted = codec_schema.extract_paths(
            _REPO, codec_schema.WIRE_SOURCES)

    def test_every_wire_message_is_symmetric(self):
        self.assertEqual(codec_schema.compare(self.extracted), [])
        msgs = set(self.extracted) - set(codec_schema.ENVELOPE_MESSAGES)
        for expected in ("Hello", "Welcome", "QueryRequest", "DataItem",
                         "Check", "CheckAck", "ValidityReply", "Audit",
                         "ShardMap"):
            self.assertIn(expected, msgs)

    def test_welcome_embeds_the_shard_map_as_submessage(self):
        schema = codec_schema.build_schema(self.extracted)
        welcome = schema["messages"]["Welcome"]["fields"]
        self.assertEqual(welcome[-1],
                         {"name": "shardMap", "submessage": "ShardMap"})

    def test_frame_table_has_all_enumerators_with_directions(self):
        frames = codec_schema.extract_frames_path(_REPO)
        self.assertEqual(len(frames), 13)
        self.assertEqual(frames["kHello"]["value"], 1)
        self.assertEqual(frames["kHello"]["direction"], "client -> server")
        self.assertEqual(frames["kHandoff"]["direction"], "shard -> shard")
        values = [f["value"] for f in frames.values()]
        self.assertEqual(len(values), len(set(values)), "duplicate values")

    def test_checked_in_schema_and_docs_match_the_code(self):
        import json
        schema = codec_schema.build_schema(
            self.extracted, codec_schema.extract_frames_path(_REPO))
        with open(os.path.join(_REPO, codec_schema.SCHEMA_PATH)) as fh:
            self.assertEqual(json.load(fh), schema,
                             "docs/wire_schema.json is stale: run "
                             "tools/analyze/codec_schema.py --write")
        with open(os.path.join(_REPO, codec_schema.DOCS_PATH)) as fh:
            text = fh.read()
        rendered = codec_schema.render_docs(schema)
        self.assertIn(rendered, text,
                      "docs/protocols.md generated block is stale: run "
                      "tools/analyze/codec_schema.py --write")


class FrameExtractionTest(unittest.TestCase):
    _ENUM = """
enum class FrameType : std::uint8_t {
  kPing = 1,  /< client -> server: are you there
  kPong = 2,  /< server -> client: yes
};
"""

    def test_value_direction_and_doc_are_parsed(self):
        frames = codec_schema.extract_frames(self._ENUM)
        self.assertEqual(frames["kPing"],
                         {"value": 1, "direction": "client -> server",
                          "doc": "are you there"})
        self.assertEqual(frames["kPong"]["value"], 2)

    def test_undocumented_enumerator_is_a_hard_error(self):
        with self.assertRaises(ValueError):
            codec_schema.extract_frames(self._ENUM.replace(
                "kPong = 2,  /< server -> client: yes", "kPong = 2,"))

    def test_no_enum_yields_empty_table(self):
        self.assertEqual(codec_schema.extract_frames("int x;"), {})


class DocsTest(unittest.TestCase):
    def test_render_and_splice_round_trip(self):
        schema = codec_schema.build_schema(_extract(_SYMMETRIC))
        rendered = codec_schema.render_docs(schema)
        self.assertIn("#### Ping", rendered)
        self.assertIn("| 0 | `token` | 32 bits |", rendered)
        doc = "intro\n%s\nold\n%s\noutro" % (
            codec_schema.DOCS_BEGIN, codec_schema.DOCS_END)
        spliced = codec_schema._splice_docs(doc, rendered)
        self.assertIsNotNone(spliced)
        self.assertIn("intro", spliced)
        self.assertIn("outro", spliced)
        self.assertNotIn("old", spliced)
        # Idempotent: splicing again changes nothing.
        self.assertEqual(codec_schema._splice_docs(spliced, rendered), spliced)

    def test_splice_refuses_unmarked_docs(self):
        self.assertIsNone(codec_schema._splice_docs("no markers here", "x"))


if __name__ == "__main__":
    unittest.main()

"""Unit tests for the dataflow layer (engine.Cfg, reaching_defs,
solve_taint) over hand-built CFGs — no libclang required.

The statement IR is neutral: these tests pin the solver semantics the
wire-taint rule relies on (edge-sensitive guard kills, tainted-bound
non-kills, join merges, copy chains, strong updates, MCI_CHECK kills)
independently of how callgraph.TaintLowering produces the IR.
"""

import os
import sys
import unittest

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "analyze",
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import engine  # noqa: E402
from engine import Cfg, Def, Guard, Sink, Stmt  # noqa: E402


def _read_def(path, sid_desc="BitReader::read"):
    return Def(path=path, has_source=True, source_desc=sid_desc)


def _subscript(*paths):
    return Sink(kind="subscript", desc="table[%s]" % ",".join(paths),
                paths=paths)


class StraightLineTaintTest(unittest.TestCase):
    def test_source_reaches_sink_with_chain(self):
        # s1: idx = r.read(16);  s2: return table[idx];
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(_read_def("idx"),)))
        cfg.add(Stmt(sid=2, uses=("idx",), sinks=(_subscript("idx"),)))
        cfg.edge(1, 2)
        result = engine.solve_taint(cfg)
        self.assertFalse(result.truncated)
        self.assertEqual(len(result.hits), 1)
        hit = result.hits[0]
        self.assertEqual(hit.tainted_path, "idx")
        self.assertEqual(hit.chain, (1, 2))

    def test_untainted_value_is_quiet(self):
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(Def(path="idx"),)))  # no source, no uses
        cfg.add(Stmt(sid=2, uses=("idx",), sinks=(_subscript("idx"),)))
        cfg.edge(1, 2)
        self.assertEqual(engine.solve_taint(cfg).hits, [])

    def test_direct_sink_needs_no_variable(self):
        # buf[r.read(8)]: the sink itself holds the source.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, sinks=(
            Sink(kind="subscript", desc="buf[r.read(8)]", direct=True),)))
        result = engine.solve_taint(cfg)
        self.assertEqual(len(result.hits), 1)
        self.assertEqual(result.hits[0].chain, (1,))


class GuardEdgeTest(unittest.TestCase):
    def _branch_cfg(self, guards, sink_on="true"):
        # s1: n = read; s2: if (...) [guards]; s3: sink on one edge;
        # s4: join.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(_read_def("n"),)))
        cfg.add(Stmt(sid=2, uses=("n",), guards=guards))
        cfg.add(Stmt(sid=3, uses=("n",), sinks=(_subscript("n"),)))
        cfg.add(Stmt(sid=4))
        cfg.edge(1, 2)
        cfg.edge(2, 3, sink_on)
        cfg.edge(2, 4, "false" if sink_on == "true" else "true")
        cfg.edge(3, 4)
        return cfg

    def test_guard_kills_taint_on_its_edge(self):
        # if (n < kMax) { table[n]; } — clean on the true edge.
        guards = (Guard(kills=("n",), edge="true"),)
        self.assertEqual(engine.solve_taint(self._branch_cfg(guards)).hits, [])

    def test_unguarded_edge_still_fires(self):
        # if (n < kMax) {} else { table[n]; } — the false edge was never
        # sanitized.
        guards = (Guard(kills=("n",), edge="true"),)
        cfg = self._branch_cfg(guards, sink_on="false")
        self.assertEqual(len(engine.solve_taint(cfg).hits), 1)

    def test_tainted_bound_does_not_sanitize(self):
        # if (n < m) where m is itself decoded: no kill on either edge.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(_read_def("n"), _read_def("m"))))
        cfg.add(Stmt(sid=2, uses=("n", "m"), guards=(
            Guard(kills=("n",), edge="true", bound_paths=("m",)),)))
        cfg.add(Stmt(sid=3, uses=("n",), sinks=(_subscript("n"),)))
        cfg.edge(1, 2)
        cfg.edge(2, 3, "true")
        self.assertEqual(len(engine.solve_taint(cfg).hits), 1)

    def test_guarded_then_reused_after_join_fires(self):
        # The PR's motivating bug shape: kill inside the branch, re-use
        # after the join — the unguarded path re-taints the join state.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(_read_def("idx"),)))
        cfg.add(Stmt(sid=2, uses=("idx",), guards=(
            Guard(kills=("idx",), edge="true"),)))
        cfg.add(Stmt(sid=3, uses=("idx",), sinks=(_subscript("idx"),)))  # then
        cfg.add(Stmt(sid=4, uses=("idx",), sinks=(_subscript("idx"),)))  # join
        cfg.edge(1, 2)
        cfg.edge(2, 3, "true")
        cfg.edge(2, 4, "false")
        cfg.edge(3, 4)
        hits = engine.solve_taint(cfg).hits
        self.assertEqual([h.stmt.sid for h in hits], [4])


class TransferTest(unittest.TestCase):
    def test_copy_propagates_taint_and_extends_chain(self):
        # n = read; total = n; resize(total)
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(_read_def("n"),)))
        cfg.add(Stmt(sid=2, defs=(Def(path="total", uses=("n",)),)))
        cfg.add(Stmt(sid=3, uses=("total",), sinks=(
            Sink(kind="size-arg", desc="out.resize(total)",
                 paths=("total",)),)))
        cfg.edge(1, 2)
        cfg.edge(2, 3)
        hits = engine.solve_taint(cfg).hits
        self.assertEqual(len(hits), 1)
        self.assertEqual(hits[0].chain, (1, 2, 3))
        self.assertEqual(hits[0].tainted_path, "total")

    def test_strong_update_untaints(self):
        # n = read; n = 0; table[n] — the overwrite cleans the path.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(_read_def("n"),)))
        cfg.add(Stmt(sid=2, defs=(Def(path="n"),)))
        cfg.add(Stmt(sid=3, uses=("n",), sinks=(_subscript("n"),)))
        cfg.edge(1, 2)
        cfg.edge(2, 3)
        self.assertEqual(engine.solve_taint(cfg).hits, [])

    def test_statement_kill_models_check_macro(self):
        # n = read; MCI_CHECK(n <= kMax); resize(n)
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(_read_def("n"),)))
        cfg.add(Stmt(sid=2, kills=("n",)))
        cfg.add(Stmt(sid=3, uses=("n",), sinks=(
            Sink(kind="size-arg", desc="resize(n)", paths=("n",)),)))
        cfg.edge(1, 2)
        cfg.edge(2, 3)
        self.assertEqual(engine.solve_taint(cfg).hits, [])

    def test_field_extension_aliases_the_base(self):
        # m = decode(...); use of m.items.count is tainted via m.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(_read_def("m", "decodeWelcome"),)))
        cfg.add(Stmt(sid=2, uses=("m.count",), sinks=(
            Sink(kind="loop-bound", desc="i < m.count",
                 paths=("m.count",)),)))
        cfg.edge(1, 2)
        self.assertEqual(len(engine.solve_taint(cfg).hits), 1)

    def test_loop_reaches_fixpoint(self):
        # while (i < n) { i = i + 1; } with tainted n: terminates, flags
        # the loop bound once.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(_read_def("n"), Def(path="i"))))
        cfg.add(Stmt(sid=2, uses=("i", "n"), sinks=(
            Sink(kind="loop-bound", desc="i < n", paths=("n",)),)))
        cfg.add(Stmt(sid=3, defs=(Def(path="i", uses=("i",)),)))
        cfg.add(Stmt(sid=4))
        cfg.edge(1, 2)
        cfg.edge(2, 3, "true")
        cfg.edge(3, 2)
        cfg.edge(2, 4, "false")
        result = engine.solve_taint(cfg)
        self.assertFalse(result.truncated)
        self.assertEqual(len(result.hits), 1)
        self.assertEqual(result.hits[0].sink.kind, "loop-bound")


class ReachingDefsTest(unittest.TestCase):
    def test_joins_merge_and_strong_updates_replace(self):
        # s1: x = ...; branch; s2: x = ...; s4(join): both defs of x reach
        # but only the latest on each path.
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(Def(path="x"),)))
        cfg.add(Stmt(sid=2, defs=(Def(path="x"),)))
        cfg.add(Stmt(sid=3))
        cfg.add(Stmt(sid=4, uses=("x",)))
        cfg.edge(1, 2, "true")
        cfg.edge(1, 3, "false")
        cfg.edge(2, 4)
        cfg.edge(3, 4)
        ins = engine.reaching_defs(cfg)
        self.assertEqual(ins[4]["x"], {1, 2})
        self.assertEqual(ins[2]["x"], {1})

    def test_unreachable_nodes_have_no_state(self):
        cfg = Cfg()
        cfg.add(Stmt(sid=1, defs=(Def(path="x"),)))
        cfg.add(Stmt(sid=2))  # no edge from 1
        ins = engine.reaching_defs(cfg)
        self.assertEqual(ins[2], {})


class HelperTest(unittest.TestCase):
    def test_paths_alias(self):
        self.assertTrue(engine.paths_alias("m", "m.items"))
        self.assertTrue(engine.paths_alias("m.items", "m"))
        self.assertTrue(engine.paths_alias("n", "n"))
        self.assertFalse(engine.paths_alias("m", "map"))

    def test_check_macro_kills_extracts_bounded_side(self):
        # The FrameBuffer::next guard: `total` is bounded by the <= clause.
        self.assertIn("total", engine.check_macro_kills(
            "MCI_CHECK(total >= kHeaderBytes && off_ + total <= buf_.size())"))
        self.assertIn("n", engine.check_macro_kills("MCI_CHECK(n <= kMax)"))
        self.assertIn(
            "count", engine.check_macro_kills("MCI_CHECK(kMax >= count)"))
        # Shifts must not parse as comparisons.
        self.assertEqual(
            engine.check_macro_kills('MCI_CHECK(x) << "msg: " << (a << 2)'),
            (),
        )

    def test_to_sarif_shape(self):
        finding = engine.Finding(rule="wire-taint", file="src/a.cpp", line=3,
                                 column=1, message="tainted index",
                                 symbol="f", detail="source -> sink")
        log = engine.to_sarif([finding], {"wire-taint": "desc"})
        self.assertEqual(log["version"], "2.1.0")
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        self.assertEqual(rules[0]["id"], "wire-taint")
        result = run["results"][0]
        self.assertEqual(result["ruleId"], "wire-taint")
        loc = result["locations"][0]["physicalLocation"]
        self.assertEqual(loc["artifactLocation"]["uri"], "src/a.cpp")
        self.assertEqual(loc["region"]["startLine"], 3)
        self.assertIn("source -> sink", result["message"]["text"])


if __name__ == "__main__":
    unittest.main()

"""Unit tests for the libclang-free parts of tools/analyze.

Everything here runs without clang bindings installed: suppression parsing,
baseline diffing, compile-command normalisation, and call-graph
reachability over synthetic graphs. The fixture corpus (test_fixtures.py)
is where libclang itself gets exercised.
"""

import json
import os
import sys
import tempfile
import unittest

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
    "analyze",
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import baseline  # noqa: E402
import engine  # noqa: E402
from callgraph import CallGraph, CallSite, Node  # noqa: E402


def _finding(rule="r", file="f.cpp", line=1, message="m", symbol=""):
    return engine.Finding(rule=rule, file=file, line=line, column=1,
                          message=message, symbol=symbol)


class SuppressionsTest(unittest.TestCase):
    def _load(self, text):
        s = engine.Suppressions()
        with tempfile.NamedTemporaryFile("w", suffix=".cpp", delete=False) as f:
            f.write(text)
            path = f.name
        try:
            s.load_file(path, "x.cpp")
        finally:
            os.unlink(path)
        return s

    def test_same_line_and_line_above(self):
        s = self._load(
            "int a;\n"
            "foo();  // MCI-ANALYZE-ALLOW(rule-a): because\n"
            "// MCI-ANALYZE-ALLOW(rule-b): reasons\n"
            "bar();\n"
        )
        self.assertTrue(s.is_allowed("rule-a", "x.cpp", 2))
        self.assertTrue(s.is_allowed("rule-b", "x.cpp", 3))
        self.assertTrue(s.is_allowed("rule-b", "x.cpp", 4))  # line below
        self.assertFalse(s.is_allowed("rule-a", "x.cpp", 4))
        self.assertFalse(s.is_allowed("rule-a", "x.cpp", 1))
        self.assertEqual(s.errors, [])

    def test_multi_rule_and_wildcard(self):
        s = self._load(
            "// MCI-ANALYZE-ALLOW(rule-a, rule-b): shared justification\n"
            "x();\n"
            "// MCI-ANALYZE-ALLOW(*): fixture file, everything is deliberate\n"
            "y();\n"
        )
        self.assertTrue(s.is_allowed("rule-a", "x.cpp", 2))
        self.assertTrue(s.is_allowed("rule-b", "x.cpp", 2))
        self.assertTrue(s.is_allowed("anything", "x.cpp", 4))

    def test_missing_reason_is_an_error(self):
        s = self._load("z();  // MCI-ANALYZE-ALLOW(rule-a)\n")
        self.assertFalse(s.is_allowed("rule-a", "x.cpp", 1))
        self.assertEqual(len(s.errors), 1)
        self.assertEqual(s.errors[0].rule, "suppression-syntax")

    def test_malformed_comment_is_an_error(self):
        s = self._load("w();  // MCI-ANALYZE-ALLOW rule-a: oops\n")
        self.assertEqual(len(s.errors), 1)

    def test_filter(self):
        s = self._load("// MCI-ANALYZE-ALLOW(r): ok here\nf();\n")
        kept = s.filter([
            _finding(rule="r", file="x.cpp", line=2),
            _finding(rule="r", file="x.cpp", line=9),
            _finding(rule="other", file="x.cpp", line=2),
        ])
        self.assertEqual([(f.rule, f.line) for f in kept],
                         [("r", 9), ("other", 2)])


class FindingTest(unittest.TestCase):
    def test_key_is_line_free(self):
        a = _finding(line=10, symbol="fn")
        b = _finding(line=99, symbol="fn")
        self.assertEqual(a.key(), b.key())

    def test_dedupe_collapses_header_repeats(self):
        a = _finding(file="h.hpp", line=5)
        out = engine.dedupe([a, _finding(file="h.hpp", line=5),
                             _finding(file="h.hpp", line=6)])
        self.assertEqual(len(out), 2)


class BaselineTest(unittest.TestCase):
    def test_roundtrip_and_diff(self):
        known_f = _finding(message="old bug", symbol="f")
        new_f = _finding(message="new bug", symbol="g")
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "baseline.json")
            baseline.write(path, [known_f])
            known = baseline.load(path)
        self.assertIn(known_f.key(), known)
        new, stale = baseline.diff([known_f, new_f], known)
        self.assertEqual([f.key() for f in new], [new_f.key()])
        self.assertEqual(stale, [])
        # The known finding fixed -> its key goes stale.
        new, stale = baseline.diff([new_f], known)
        self.assertEqual(stale, [known_f.key()])

    def test_missing_baseline_is_empty(self):
        self.assertEqual(baseline.load("/nonexistent/baseline.json"), {})

    def test_hot_path_alloc_entries_are_rejected_on_load(self):
        # Tick-path allocation findings must be fixed or ALLOW'd at the
        # site — a baseline entry hides them repo-wide, so load() refuses.
        hot = _finding(rule="hot-path-alloc", symbol="encodeWire",
                       message="'new' expression on an MCI_HOT path")
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "baseline.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump({"version": baseline.BASELINE_VERSION,
                           "findings": [{"key": hot.key(), "why": "no"}]},
                          fh)
            with self.assertRaisesRegex(ValueError, "hot-path-alloc"):
                baseline.load(path)

    def test_write_refuses_to_baseline_hot_path_alloc(self):
        hot = _finding(rule="hot-path-alloc", symbol="f",
                       message="allocation call 'malloc' on an MCI_HOT path")
        ordinary = _finding(rule="checked-return", symbol="g",
                            message="unchecked")
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "baseline.json")
            baseline.write(path, [hot, ordinary])
            known = baseline.load(path)  # must stay loadable
        self.assertIn(ordinary.key(), known)
        self.assertNotIn(hot.key(), known)


class NormalizeCommandTest(unittest.TestCase):
    def test_strips_output_and_input(self):
        args = engine.normalize_command({
            "file": "/r/src/a.cpp",
            "command": "g++ -Ifoo -O2 -c -o a.o -MD -MF a.d /r/src/a.cpp",
        })
        self.assertNotIn("-c", args)
        self.assertNotIn("-o", args)
        self.assertNotIn("a.o", args)
        self.assertNotIn("-MF", args)
        self.assertNotIn("a.d", args)
        self.assertNotIn("/r/src/a.cpp", args)
        self.assertIn("-Ifoo", args)
        self.assertIn("-O2", args)


class CallGraphTest(unittest.TestCase):
    def _graph(self, edges):
        g = CallGraph()
        for src, dst in edges:
            g.ensure(src, src)
            g.ensure(dst, dst)
            g.nodes[src].calls.append(
                CallSite(callee_usr=dst, callee_name=dst, file="f.cpp",
                         line=1, column=1))
        return g

    def test_reachability_and_chain(self):
        g = self._graph([("a", "b"), ("b", "c"), ("x", "y")])
        r = g.reachable(["a"], budget=100, max_depth=10)
        self.assertEqual(r.reached, {"a", "b", "c"})
        self.assertFalse(r.truncated)
        self.assertEqual(g.chain(r, "c"), "c <- b <- a")

    def test_budget_truncation(self):
        g = self._graph([("a", "b"), ("a", "c"), ("a", "d")])
        r = g.reachable(["a"], budget=2, max_depth=10)
        self.assertTrue(r.truncated)
        self.assertLessEqual(len(r.reached), 2)

    def test_depth_truncation(self):
        g = self._graph([("a", "b"), ("b", "c")])
        r = g.reachable(["a"], budget=100, max_depth=1)
        self.assertTrue(r.truncated)
        self.assertNotIn("c", r.reached)

    def test_unresolved_edges_terminate(self):
        g = CallGraph()
        g.ensure("a", "a")
        g.nodes["a"].calls.append(
            CallSite(callee_usr="", callee_name="recv", file="f.cpp",
                     line=1, column=1))
        r = g.reachable(["a"], budget=10, max_depth=10)
        self.assertEqual(r.reached, {"a"})

    def test_unknown_root_ignored(self):
        g = self._graph([("a", "b")])
        r = g.reachable(["nope"], budget=10, max_depth=10)
        self.assertEqual(r.reached, set())


if __name__ == "__main__":
    unittest.main()

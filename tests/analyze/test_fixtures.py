"""Fixture-corpus tests: each rule fires on its bad.cpp and stays quiet on
its good.cpp.

Runs mci_analyze.py as a subprocess (the same entry point CI and the CTest
`analyze` test use) so the exit-code contract is tested too. Skips itself
when libclang is unavailable — the analyzer's own probe decides, so the
skip condition can never drift from the production gate.
"""

import os
import subprocess
import sys
import unittest

_REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_ANALYZE = os.path.join(_REPO, "tools", "analyze", "mci_analyze.py")
_FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "fixtures")

RULES = [
    "reactor-blocking",
    "codec-bounds",
    "hot-path-alloc",
    "checked-return",
    "ordered-iteration",
]

_probe_result = None


def _libclang_available():
    """One subprocess probe per test run; exit 77 means skip."""
    global _probe_result
    if _probe_result is None:
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--list-rules"],
            capture_output=True, text=True)
        _probe_result = proc.returncode
    return _probe_result != 77


def _run(rule, fixture):
    path = os.path.join(_FIXTURES, rule.replace("-", "_"), fixture)
    return subprocess.run(
        [sys.executable, _ANALYZE, "--rule", rule, "--no-baseline", path],
        capture_output=True, text=True, cwd=_REPO)


class FixtureCorpusTest(unittest.TestCase):
    def setUp(self):
        if not _libclang_available():
            self.skipTest("libclang unavailable (analyzer probe exited 77)")

    def test_rules_are_all_registered(self):
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        for rule in RULES:
            self.assertIn(rule, proc.stdout)

    def _assert_fires(self, rule):
        proc = _run(rule, "bad.cpp")
        self.assertEqual(
            proc.returncode, 1,
            "%s should report findings on bad.cpp\nstdout:\n%s\nstderr:\n%s"
            % (rule, proc.stdout, proc.stderr))
        self.assertIn(rule, proc.stdout)

    def _assert_quiet(self, rule):
        proc = _run(rule, "good.cpp")
        self.assertEqual(
            proc.returncode, 0,
            "%s should be quiet on good.cpp\nstdout:\n%s\nstderr:\n%s"
            % (rule, proc.stdout, proc.stderr))

    def test_reactor_blocking_fires(self):
        self._assert_fires("reactor-blocking")

    def test_reactor_blocking_quiet(self):
        self._assert_quiet("reactor-blocking")

    def test_codec_bounds_fires(self):
        self._assert_fires("codec-bounds")

    def test_codec_bounds_quiet(self):
        self._assert_quiet("codec-bounds")

    def test_hot_path_alloc_fires(self):
        self._assert_fires("hot-path-alloc")

    def test_hot_path_alloc_quiet(self):
        self._assert_quiet("hot-path-alloc")

    def test_checked_return_fires(self):
        self._assert_fires("checked-return")

    def test_checked_return_quiet(self):
        self._assert_quiet("checked-return")

    def test_ordered_iteration_fires(self):
        self._assert_fires("ordered-iteration")

    def test_ordered_iteration_quiet(self):
        self._assert_quiet("ordered-iteration")

    def test_transitive_reachability_reported(self):
        """bad.cpp's two-hop blocking call carries a call-chain note."""
        proc = _run("reactor-blocking", "bad.cpp")
        self.assertIn("drainSocket", proc.stdout)
        self.assertIn("reachable via", proc.stdout)

    def test_alias_seen_through(self):
        """The typedef'd unordered container (old lint's blind spot) fires."""
        proc = _run("ordered-iteration", "bad.cpp")
        self.assertIn("sumAliasBad", proc.stdout)


class SkipContractTest(unittest.TestCase):
    """Exit-code contract checks that run with or without libclang."""

    def test_strict_mode_never_exits_77(self):
        env = dict(os.environ, MCI_ANALYZE_STRICT="1")
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--list-rules"],
            capture_output=True, text=True, env=env)
        self.assertNotEqual(proc.returncode, 77)
        self.assertIn(proc.returncode, (0, 2))

    def test_unknown_rule_is_setup_error(self):
        if not _libclang_available():
            self.skipTest("libclang unavailable (analyzer probe exited 77)")
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--rule", "no-such-rule",
             os.path.join(_FIXTURES, "codec_bounds", "good.cpp")],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()

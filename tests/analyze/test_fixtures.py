"""Fixture-corpus tests: each rule fires on its bad.cpp and stays quiet on
its good.cpp.

Runs mci_analyze.py as a subprocess (the same entry point CI and the CTest
`analyze_*` tests use) so the exit-code contract is tested too. The
clang-dependent cases skip themselves when libclang is unavailable — the
analyzer's own `--probe-libclang` gate decides, so the skip condition can
never drift from the production gate. codec-symmetry is textual and its
cases run everywhere.
"""

import os
import re
import subprocess
import sys
import unittest

_REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_ANALYZE = os.path.join(_REPO, "tools", "analyze", "mci_analyze.py")
_FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "fixtures")

RULES = [
    "reactor-blocking",
    "codec-bounds",
    "hot-path-alloc",
    "checked-return",
    "ordered-iteration",
    "wire-taint",
    "codec-symmetry",
    "callback-lifetime",
    "handler-coverage",
]

_probe_result = None


def _libclang_available():
    """One subprocess probe per test run; exit 77 means skip."""
    global _probe_result
    if _probe_result is None:
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--probe-libclang"],
            capture_output=True, text=True)
        _probe_result = proc.returncode
    return _probe_result != 77


def _run(rule, fixture):
    path = os.path.join(_FIXTURES, rule.replace("-", "_"), fixture)
    return subprocess.run(
        [sys.executable, _ANALYZE, "--rule", rule, "--no-baseline", path],
        capture_output=True, text=True, cwd=_REPO)


class FixtureCaseMixin:
    def _assert_fires(self, rule, expect=()):
        proc = _run(rule, "bad.cpp")
        self.assertEqual(
            proc.returncode, 1,
            "%s should report findings on bad.cpp\nstdout:\n%s\nstderr:\n%s"
            % (rule, proc.stdout, proc.stderr))
        self.assertIn(rule, proc.stdout)
        for needle in expect:
            self.assertIn(needle, proc.stdout)

    def _assert_quiet(self, rule):
        proc = _run(rule, "good.cpp")
        self.assertEqual(
            proc.returncode, 0,
            "%s should be quiet on good.cpp\nstdout:\n%s\nstderr:\n%s"
            % (rule, proc.stdout, proc.stderr))


class FixtureCorpusTest(unittest.TestCase, FixtureCaseMixin):
    """Clang-dependent rules: skip as a block without libclang."""

    def setUp(self):
        if not _libclang_available():
            self.skipTest("libclang unavailable (analyzer probe exited 77)")

    def test_rules_are_all_registered(self):
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        for rule in RULES:
            self.assertIn(rule, proc.stdout)

    def test_reactor_blocking_fires(self):
        self._assert_fires("reactor-blocking")

    def test_reactor_blocking_quiet(self):
        self._assert_quiet("reactor-blocking")

    def test_codec_bounds_fires(self):
        self._assert_fires("codec-bounds")

    def test_codec_bounds_quiet(self):
        self._assert_quiet("codec-bounds")

    def test_hot_path_alloc_fires(self):
        self._assert_fires("hot-path-alloc")

    def test_hot_path_alloc_quiet(self):
        self._assert_quiet("hot-path-alloc")

    def test_checked_return_fires(self):
        self._assert_fires("checked-return")

    def test_checked_return_quiet(self):
        self._assert_quiet("checked-return")

    def test_ordered_iteration_fires(self):
        self._assert_fires("ordered-iteration")

    def test_ordered_iteration_quiet(self):
        self._assert_quiet("ordered-iteration")

    def test_transitive_reachability_reported(self):
        """bad.cpp's two-hop blocking call carries a call-chain note."""
        proc = _run("reactor-blocking", "bad.cpp")
        self.assertIn("drainSocket", proc.stdout)
        self.assertIn("reachable via", proc.stdout)

    def test_alias_seen_through(self):
        """The typedef'd unordered container (old lint's blind spot) fires."""
        proc = _run("ordered-iteration", "bad.cpp")
        self.assertIn("sumAliasBad", proc.stdout)

    def test_wire_taint_fires_on_every_seeded_bug(self):
        """All nine seeded flows report, each exactly once — the last
        three only exist across call edges (summary propagation)."""
        proc = _run("wire-taint", "bad.cpp")
        self.assertEqual(
            proc.returncode, 1,
            "wire-taint should fire on bad.cpp\nstdout:\n%s\nstderr:\n%s"
            % (proc.stdout, proc.stderr))
        for fn in ("badUnguardedIndex", "badGuardedThenReused",
                   "badTaintThroughCopy", "badMemcpyLength", "badLoopBound",
                   "badHandoffReserve", "badTwoHopIndex",
                   "badArgIntoHelperSink", "badRecursiveHelper"):
            self.assertEqual(
                proc.stdout.count("[in %s]" % fn), 1,
                "%s should report exactly once\nstdout:\n%s"
                % (fn, proc.stdout))

    def test_wire_taint_findings_carry_source_chains(self):
        proc = _run("wire-taint", "bad.cpp")
        self.assertIn("BitReader::read", proc.stdout)
        self.assertIn("source -> sink", proc.stdout)

    def test_wire_taint_helpers_report_no_findings_of_their_own(self):
        """The helpers behind the interproc cases are not themselves
        defective: the source-free sink helper and the read-returning
        helper must not fire at their own definition lines."""
        proc = _run("wire-taint", "bad.cpp")
        for fn in ("sinkInHelper", "readRawIndex", "readNestedValue"):
            self.assertNotIn("[in %s]" % fn, proc.stdout)

    def test_wire_taint_quiet(self):
        """good.cpp includes the summary-proven cross-function flows (a
        bounded helper return and a callee-guarded argument)."""
        self._assert_quiet("wire-taint")

    def test_callback_lifetime_fires_on_every_escape_route(self):
        proc = _run("callback-lifetime", "bad.cpp")
        self.assertEqual(
            proc.returncode, 1,
            "callback-lifetime should fire on bad.cpp\nstdout:\n%s\n"
            "stderr:\n%s" % (proc.stdout, proc.stderr))
        for cls, needle in (
                ("LeakyServer", "no removeFd"),
                ("FireAndForget", "handle discarded"),
                ("NoTeardown", "no destructor"),
                ("ForgetsRetire", "retireOwner is not reachable"),
                ("NestedRegistrar", "inside a callback without an OwnerId")):
            self.assertEqual(
                proc.stdout.count(needle), 1,
                "%s (%r) should report exactly once\nstdout:\n%s"
                % (cls, needle, proc.stdout))

    def test_callback_lifetime_quiet(self):
        self._assert_quiet("callback-lifetime")

    def test_explain_prints_the_cross_function_chain(self):
        """--explain on a two-hop wire-taint finding prints every hop,
        including the callee-side step the one-line render elides."""
        proc = _run("wire-taint", "bad.cpp")
        m = re.search(r"\[in badTwoHopIndex\].*?id: ([0-9a-f]{12})",
                      proc.stdout, re.DOTALL)
        self.assertIsNotNone(m, proc.stdout)
        path = os.path.join(_FIXTURES, "wire_taint", "bad.cpp")
        explained = subprocess.run(
            [sys.executable, _ANALYZE, "--rule", "wire-taint",
             "--no-baseline", "--explain", m.group(1), path],
            capture_output=True, text=True, cwd=_REPO)
        self.assertEqual(explained.returncode, 0, explained.stderr)
        self.assertIn("chain (source -> sink", explained.stdout)
        self.assertIn("readRawIndex", explained.stdout)


class CodecSymmetryFixtureTest(unittest.TestCase, FixtureCaseMixin):
    """codec-symmetry is textual: these run without libclang."""

    def test_fires_on_dropped_field_width_and_reorder(self):
        proc = _run("codec-symmetry", "bad.cpp")
        self.assertEqual(
            proc.returncode, 1,
            "codec-symmetry should fire on bad.cpp\nstdout:\n%s\nstderr:\n%s"
            % (proc.stdout, proc.stderr))
        for msg in ("FixDropped", "FixWidth", "FixReorder", "FixSubDropped"):
            self.assertIn(msg, proc.stdout)

    def test_quiet_on_symmetric_pair(self):
        self._assert_quiet("codec-symmetry")


class HandlerCoverageFixtureTest(unittest.TestCase, FixtureCaseMixin):
    """handler-coverage is textual: these run without libclang."""

    def test_fires_on_missing_arm_and_unknown_type(self):
        proc = _run("handler-coverage", "bad.cpp")
        self.assertEqual(
            proc.returncode, 1,
            "handler-coverage should fire on bad.cpp\nstdout:\n%s\n"
            "stderr:\n%s" % (proc.stdout, proc.stderr))
        self.assertIn("kValidityReply", proc.stdout)
        self.assertIn("no dispatch arm", proc.stdout)
        self.assertIn("kLegacyPing", proc.stdout)
        self.assertIn("does not name", proc.stdout)

    def test_quiet_when_covered_or_named_opt_out(self):
        self._assert_quiet("handler-coverage")

    def test_explain_round_trips_a_printed_id(self):
        """Every finding line advertises an id; --explain with a prefix of
        it reprints the finding in full. Textual rule, so libclang-free."""
        proc = _run("handler-coverage", "bad.cpp")
        m = re.search(r"id: ([0-9a-f]{12})", proc.stdout)
        self.assertIsNotNone(m, proc.stdout)
        path = os.path.join(_FIXTURES, "handler_coverage", "bad.cpp")
        explained = subprocess.run(
            [sys.executable, _ANALYZE, "--rule", "handler-coverage",
             "--no-baseline", "--explain", m.group(1)[:8], path],
            capture_output=True, text=True, cwd=_REPO)
        self.assertEqual(explained.returncode, 0, explained.stderr)
        self.assertIn(m.group(1), explained.stdout)
        self.assertIn("handler-coverage", explained.stdout)

    def test_explain_unknown_id_is_setup_error(self):
        path = os.path.join(_FIXTURES, "handler_coverage", "bad.cpp")
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--rule", "handler-coverage",
             "--no-baseline", "--explain", "ffffffffffff", path],
            capture_output=True, text=True, cwd=_REPO)
        self.assertEqual(proc.returncode, 2)


class SkipContractTest(unittest.TestCase):
    """Exit-code contract checks that run with or without libclang."""

    def test_strict_mode_probe_never_exits_77(self):
        env = dict(os.environ, MCI_ANALYZE_STRICT="1")
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--probe-libclang"],
            capture_output=True, text=True, env=env)
        self.assertNotEqual(proc.returncode, 77)
        self.assertIn(proc.returncode, (0, 2))

    def test_list_rules_is_libclang_free(self):
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_clang_rule_selection_skips_without_libclang(self):
        if _libclang_available():
            self.skipTest("libclang present: the skip path is unreachable")
        proc = _run("wire-taint", "bad.cpp")
        self.assertEqual(proc.returncode, 77,
                         "clang-dependent selections must keep the skip "
                         "contract, not partially succeed")

    def test_unknown_rule_is_setup_error(self):
        proc = subprocess.run(
            [sys.executable, _ANALYZE, "--rule", "no-such-rule",
             os.path.join(_FIXTURES, "codec_bounds", "good.cpp")],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()

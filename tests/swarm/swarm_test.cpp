// The swarm emulator end to end over real loopback sockets: a cluster of
// BroadcastServers plus a SwarmEmulator sharing one reactor. The emulated
// population's hit ratio is gated against a real 8-agent ClientPool over
// the identical configuration and seed (the vectorized model's fidelity
// claim), cache answers are audited against the authoritative databases
// (zero stale reads), and the TS in-place parser is pinned byte-for-byte
// against ReportCodec::decodeTs.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "db/update_history.hpp"
#include "live/client_agent.hpp"
#include "live/cluster.hpp"
#include "live/reactor.hpp"
#include "report/codec.hpp"
#include "report/ts_report.hpp"
#include "swarm/engine.hpp"

namespace mci::swarm {
namespace {

/// Hot/cold over a small database with the hot set cacheable: enough hits
/// for the hit-ratio comparisons to carry signal within a short test run.
core::SimConfig baseConfig(schemes::SchemeKind scheme) {
  core::SimConfig cfg;
  cfg.scheme = scheme;
  cfg.dbSize = 500;
  cfg.clientBufferFrac = 0.1;
  cfg.workload = core::WorkloadKind::kHotCold;
  cfg.hotQuery = {0, 50, 0.8};
  cfg.meanThinkTime = 25.0;
  cfg.meanItemsPerQuery = 4.0;
  cfg.meanUpdateInterarrival = 50.0;
  cfg.broadcastPeriod = 10.0;
  cfg.simTime = 800.0;
  cfg.seed = 1234;
  return cfg;
}

struct SwarmRun {
  SwarmStats stats;
  MuxStats mux;
  bool ready = false;
};

SwarmRun runSwarm(const core::SimConfig& cfg, double timeScale,
                  std::uint32_t clients, std::uint32_t shards,
                  std::uint32_t endpoints, double zipfTheta = -1.0) {
  live::Reactor reactor;
  live::ClusterOptions co;
  co.cfg = cfg;
  co.cfg.numClients = clients;
  co.timeScale = timeScale;
  co.shardCount = shards;
  co.maxSendQueueBytes = std::size_t{64} << 20;
  live::Cluster cluster(reactor, co);

  SwarmOptions so;
  so.cfg = cfg;
  so.cfg.numClients = clients;
  so.port = cluster.seedPort();
  so.clients = clients;
  so.endpointsPerShard = endpoints;
  so.zipfTheta = zipfTheta;
  so.auditDbs = cluster.auditDbs();
  SwarmEmulator em(reactor, so);
  em.start();

  const live::Reactor::TimerHandle tick = reactor.addTimer(0.01, 0.01, [&] {
    if (em.ready() && em.modelNow() >= cfg.simTime) {
      em.shutdown();
      reactor.stop();
    }
  });
  reactor.run();
  (void)reactor.cancelTimer(tick);

  SwarmRun r;
  r.stats = em.stats();
  r.mux = em.mux().stats();
  r.ready = em.ready();
  EXPECT_EQ(cluster.staleReads(), 0u);
  return r;
}

double runPool(const core::SimConfig& cfg, double timeScale,
               std::size_t agents) {
  live::Reactor reactor;
  live::ClusterOptions co;
  co.cfg = cfg;
  co.cfg.numClients = agents;
  co.timeScale = timeScale;
  co.shardCount = 1;
  live::Cluster cluster(reactor, co);

  live::AgentOptions ao;
  ao.cfg = cfg;
  ao.cfg.numClients = agents;
  ao.port = cluster.seedPort();
  ao.numAgents = agents;
  ao.auditDbs = cluster.auditDbs();
  live::ClientPool pool(reactor, ao);
  pool.start();

  const live::Reactor::TimerHandle tick = reactor.addTimer(0.01, 0.01, [&] {
    if (pool.modelNow() >= cfg.simTime) {
      pool.shutdown();
      reactor.stop();
    }
  });
  reactor.run();
  (void)reactor.cancelTimer(tick);
  EXPECT_EQ(pool.staleReads(), 0u);
  EXPECT_EQ(cluster.staleReads(), 0u);
  return pool.finalize().hitRatio();
}

void expectSound(const SwarmRun& r) {
  EXPECT_TRUE(r.ready);
  EXPECT_EQ(r.mux.connectionsLost, 0u);
  EXPECT_GT(r.stats.reportsProcessed, 0u);
  EXPECT_GT(r.stats.queriesCompleted, 0u);
  EXPECT_EQ(r.stats.staleReads, 0u);
}

/// The headline fidelity check: an emulated population and a real agent
/// pool over the same scheme, workload and seed must land on comparable
/// hit ratios. The pool side is 8 agents (a few thousand reads), so the
/// tolerance is statistical, not exact; the committed bench gate runs the
/// same comparison at 10^5 clients with much tighter bounds.
void parityCase(schemes::SchemeKind scheme) {
  const core::SimConfig cfg = baseConfig(scheme);
  const SwarmRun sw = runSwarm(cfg, 400.0, 400, 1, 4);
  expectSound(sw);
  const double hitSwarm = sw.stats.hitRatio();
  const double hitPool = runPool(cfg, 400.0, 8);
  EXPECT_GT(hitSwarm, 0.1);
  EXPECT_GT(hitPool, 0.1);
  const double parity =
      std::min(hitSwarm, hitPool) / std::max(hitSwarm, hitPool);
  EXPECT_GT(parity, 0.6) << "swarm " << hitSwarm << " vs pool " << hitPool;
}

TEST(Swarm, AfwHitRatioMatchesClientPool) {
  parityCase(schemes::SchemeKind::kAfw);
}

TEST(Swarm, AawHitRatioMatchesClientPool) {
  parityCase(schemes::SchemeKind::kAaw);
}

// The model is driven purely by (seed, report ticks): multiplexing the
// uplink over 1 or 4 TCP endpoints must not move the aggregate statistics
// beyond report-timing jitter.
TEST(Swarm, EndpointCountDoesNotChangeTheModel) {
  const core::SimConfig cfg = baseConfig(schemes::SchemeKind::kAaw);
  const SwarmRun one = runSwarm(cfg, 400.0, 400, 1, 1);
  const SwarmRun four = runSwarm(cfg, 400.0, 400, 1, 4);
  expectSound(one);
  expectSound(four);
  const double h1 = one.stats.hitRatio();
  const double h4 = four.stats.hitRatio();
  EXPECT_GT(h1, 0.1);
  EXPECT_NEAR(h1, h4, 0.08) << "1-endpoint vs 4-endpoint hit ratio";
}

TEST(Swarm, ShardedClusterRunsClean) {
  const core::SimConfig cfg = baseConfig(schemes::SchemeKind::kAaw);
  const SwarmRun r = runSwarm(cfg, 400.0, 300, 3, 2);
  expectSound(r);
  EXPECT_GT(r.stats.hitRatio(), 0.05);
}

TEST(Swarm, ZipfWorkloadRunsAndSkewsTowardLowRanks) {
  core::SimConfig cfg = baseConfig(schemes::SchemeKind::kAaw);
  cfg.workload = core::WorkloadKind::kUniform;  // replaced by Zipf
  const SwarmRun r = runSwarm(cfg, 400.0, 300, 1, 4, /*zipfTheta=*/0.9);
  expectSound(r);
  // theta = 0.9 concentrates most picks on a cacheable head: the hit
  // ratio must clear what UNIFORM over 500 items could ever deliver
  // (<= capacity/db = 0.1) by a wide margin.
  EXPECT_GT(r.stats.hitRatio(), 0.2);
}

// Rejecting non-adaptive servers must be loud, not a silent misrun.
TEST(Swarm, NonAdaptiveServerIsRejected) {
  core::SimConfig cfg = baseConfig(schemes::SchemeKind::kTs);
  cfg.simTime = 50.0;
  EXPECT_THROW(runSwarm(cfg, 400.0, 10, 1, 1), std::runtime_error);
}

// Pins the engine's in-place TS parse — [kind:2][extended:1][T:tsBits]
// [coverage:tsBits][count:24] then count x [item:itemBits][t:tsBits] —
// against the allocating codec over the same bytes.
TEST(Swarm, TsWireParseMatchesReportCodec) {
  core::SimConfig cfg = baseConfig(schemes::SchemeKind::kAaw);
  const report::SizeModel sizes = cfg.sizeModel();
  report::ReportCodec codec(sizes, 1e-3);

  db::UpdateHistory hist(cfg.dbSize);
  hist.record(3, 101.25);
  hist.record(250, 107.5);
  hist.record(499, 119.875);
  const std::shared_ptr<const report::TsReport> ts =
      report::TsReport::build(hist, sizes, 120.0, 100.0);
  const std::vector<std::uint8_t> wire = codec.encode(*ts);

  // The engine's parse, performed here field by field.
  report::BitReader r(wire.data(), wire.size());
  ASSERT_EQ(r.read(2), 0u);       // kind TS
  ASSERT_EQ(r.read(1), 0u);       // extended flag
  const int tsBits = sizes.timestampBits;
  const int itemBits = sizes.itemIdBits();
  const auto now = r.read(tsBits);
  const auto coverage = r.read(tsBits);
  const auto count = r.read(24);
  ASSERT_TRUE(r.fits(count, itemBits + tsBits));

  const std::shared_ptr<const report::TsReport> decoded = codec.decodeTs(wire);
  ASSERT_TRUE(decoded != nullptr);
  EXPECT_DOUBLE_EQ(codec.dequantize(now), decoded->broadcastTime);
  EXPECT_DOUBLE_EQ(codec.dequantize(coverage), decoded->coverageStart());
  ASSERT_EQ(count, decoded->entries().size());
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto item = static_cast<db::ItemId>(r.read(itemBits));
    const auto t = r.read(tsBits);
    EXPECT_EQ(item, decoded->entries()[i].item);
    EXPECT_DOUBLE_EQ(codec.dequantize(t), decoded->entries()[i].time);
  }
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace mci::swarm

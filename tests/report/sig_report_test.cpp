#include "report/sig_report.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace mci::report {
namespace {

TEST(SignatureTable, MembershipIsDeterministicAndSized) {
  SignatureTable t(100, 32, 4, 9);
  for (db::ItemId i = 0; i < 100; ++i) {
    const auto a = t.subsetsOf(i);
    const auto b = t.subsetsOf(i);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 4u);
    for (std::size_t s : a) EXPECT_LT(s, 32u);
    // No duplicate memberships (they would XOR-cancel).
    std::set<std::size_t> uniq(a.begin(), a.end());
    EXPECT_EQ(uniq.size(), a.size());
  }
}

TEST(SignatureTable, ItemSignatureChangesWithVersion) {
  SignatureTable t(10, 8, 2, 1);
  EXPECT_NE(t.itemSignature(3, 0), t.itemSignature(3, 1));
  EXPECT_NE(t.itemSignature(3, 0), t.itemSignature(4, 0));
  EXPECT_EQ(t.itemSignature(3, 2), t.itemSignature(3, 2));
}

TEST(SignatureTable, UpdateFlipsExactlyItsSubsets) {
  SignatureTable t(50, 16, 3, 7);
  const auto before = t.combined();
  t.applyUpdate(11, 0, 1);
  const auto after = t.combined();
  const auto sets = t.subsetsOf(11);
  for (std::size_t s = 0; s < after.size(); ++s) {
    const bool member =
        std::find(sets.begin(), sets.end(), s) != sets.end();
    EXPECT_EQ(before[s] != after[s], member) << "subset " << s;
  }
}

TEST(SignatureTable, UpdateThenRevertRestoresCombined) {
  SignatureTable t(50, 16, 3, 7);
  const auto before = t.combined();
  t.applyUpdate(11, 0, 1);
  t.applyUpdate(11, 1, 0);  // XOR round trip
  EXPECT_EQ(t.combined(), before);
}

TEST(SignatureTable, ManyUpdatesKeepCombinedConsistent) {
  // Combined signatures must always equal the XOR over current item
  // signatures, whatever the update order.
  const std::size_t n = 64, m = 16;
  SignatureTable t(n, m, 3, 3);
  std::vector<std::uint32_t> versions(n, 0);
  std::mt19937_64 rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto item = static_cast<db::ItemId>(rng() % n);
    t.applyUpdate(item, versions[item], versions[item] + 1);
    ++versions[item];
  }
  std::vector<std::uint64_t> expect(m, 0);
  for (db::ItemId item = 0; item < n; ++item) {
    const std::uint64_t sig = t.itemSignature(item, versions[item]);
    for (std::size_t s : t.subsetsOf(item)) expect[s] ^= sig;
  }
  EXPECT_EQ(t.combined(), expect);
}

TEST(SigReport, SnapshotsCombinedValues) {
  SignatureTable t(50, 16, 3, 7);
  SizeModel sizes;
  sizes.numItems = 50;
  const auto r = SigReport::build(t, sizes, 40.0);
  EXPECT_EQ(r->combined(), t.combined());
  EXPECT_EQ(r->kind, ReportKind::kSignature);
  EXPECT_DOUBLE_EQ(r->broadcastTime, 40.0);
  EXPECT_DOUBLE_EQ(r->sizeBits, sizes.sigReportBits(16));
  // Later table changes must not leak into the snapshot.
  const auto before = r->combined();
  t.applyUpdate(1, 0, 1);
  EXPECT_EQ(r->combined(), before);
}

TEST(SignatureTable, DifferentSeedsDifferentTables) {
  SignatureTable a(50, 16, 3, 1);
  SignatureTable b(50, 16, 3, 2);
  EXPECT_NE(a.combined(), b.combined());
}

}  // namespace
}  // namespace mci::report

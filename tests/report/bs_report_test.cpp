#include "report/bs_report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

namespace mci::report {
namespace {

SizeModel model(std::size_t n) {
  SizeModel m;
  m.numItems = n;
  return m;
}

TEST(BsReport, EmptyHistoryInvalidatesNothing) {
  db::UpdateHistory h(64);
  const auto r = BsReport::build(h, model(64), 100.0);
  EXPECT_EQ(r->decide(0.0).action, BsReport::Action::kNothing);
  EXPECT_EQ(r->decide(50.0).action, BsReport::Action::kNothing);
  EXPECT_DOUBLE_EQ(r->lastUpdateTime(), sim::kTimeEpoch);
}

TEST(BsReport, FreshClientSeesNothing) {
  db::UpdateHistory h(64);
  h.record(3, 10.0);
  const auto r = BsReport::build(h, model(64), 100.0);
  EXPECT_EQ(r->decide(10.0).action, BsReport::Action::kNothing);
  EXPECT_EQ(r->decide(99.0).action, BsReport::Action::kNothing);
}

TEST(BsReport, SingleUpdateInvalidatesJustThatItem) {
  db::UpdateHistory h(64);
  h.record(3, 50.0);
  const auto r = BsReport::build(h, model(64), 100.0);
  const auto d = r->decide(40.0);
  ASSERT_EQ(d.action, BsReport::Action::kInvalidateSet);
  ASSERT_EQ(d.marked.size(), 1u);
  EXPECT_EQ(d.marked[0].item, 3u);
}

TEST(BsReport, LevelGranularityIsConservative) {
  db::UpdateHistory h(64);
  for (db::ItemId i = 0; i < 8; ++i) h.record(i, 10.0 * (i + 1));
  const auto r = BsReport::build(h, model(64), 100.0);
  // tlb = 45: items 4..7 updated after. The smallest level covering 45 has
  // marked count >= 4, possibly more — but never misses one of 4..7.
  const auto d = r->decide(45.0);
  ASSERT_EQ(d.action, BsReport::Action::kInvalidateSet);
  std::set<db::ItemId> marked;
  for (const auto& rec : d.marked) marked.insert(rec.item);
  for (db::ItemId i = 4; i < 8; ++i) EXPECT_TRUE(marked.contains(i)) << i;
}

TEST(BsReport, AncientClientDropsEverything) {
  const std::size_t n = 16;
  db::UpdateHistory h(n);
  // Update more than N/2 distinct items after t=5.
  for (db::ItemId i = 0; i < 12; ++i) h.record(i, 10.0 + i);
  const auto r = BsReport::build(h, model(n), 100.0);
  EXPECT_GT(r->coverageStart(), 5.0);
  EXPECT_EQ(r->decide(5.0).action, BsReport::Action::kDropAll);
}

TEST(BsReport, CoverageStartIsEpochWhileFewUpdates) {
  db::UpdateHistory h(64);
  for (db::ItemId i = 0; i < 10; ++i) h.record(i, 10.0 + i);  // < N/2 = 32
  const auto r = BsReport::build(h, model(64), 100.0);
  EXPECT_DOUBLE_EQ(r->coverageStart(), sim::kTimeEpoch);
  // Even a never-listened client (Tlb = epoch) salvages: only updated
  // items are invalidated.
  const auto d = r->decide(sim::kTimeEpoch);
  ASSERT_EQ(d.action, BsReport::Action::kInvalidateSet);
  EXPECT_EQ(d.marked.size(), 10u);
}

TEST(BsReport, LevelsHalveAndTimestampsDecrease) {
  const std::size_t n = 64;
  db::UpdateHistory h(n);
  for (db::ItemId i = 0; i < 40; ++i) h.record(i, 1.0 + i);
  const auto r = BsReport::build(h, model(n), 100.0);
  const auto& levels = r->levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front().marked, 32u);  // N/2
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(levels[i].marked, levels[i - 1].marked);
    EXPECT_GE(levels[i].ts, levels[i - 1].ts);  // smaller sets are fresher
  }
  EXPECT_EQ(levels.back().marked, 1u);
}

TEST(BsReport, SizeUsesPaperFormula) {
  db::UpdateHistory h(1000);
  h.record(1, 10.0);
  const auto r = BsReport::build(h, model(1000), 100.0);
  EXPECT_DOUBLE_EQ(r->sizeBits, model(1000).bsReportBits());
}

// ---------- the core property: never keep a stale item ----------

struct RandomHistory {
  db::UpdateHistory history;
  std::map<db::ItemId, double> lastUpdate;
  double endTime = 0;

  explicit RandomHistory(std::size_t n, std::mt19937_64& rng, int updates)
      : history(n) {
    double t = 0;
    for (int i = 0; i < updates; ++i) {
      t += static_cast<double>(rng() % 50) / 10.0 + 0.1;
      const auto item = static_cast<db::ItemId>(rng() % n);
      history.record(item, t);
      lastUpdate[item] = t;
    }
    endTime = t + 1;
  }
};

TEST(BsReport, PropertyNeverMissesAnUpdatedItem) {
  std::mt19937_64 rng(42);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n = 8 + rng() % 120;
    RandomHistory rh(n, rng, static_cast<int>(rng() % 200));
    const auto r = BsReport::build(rh.history, model(n), rh.endTime);

    for (int probe = 0; probe < 20; ++probe) {
      const double tlb = rh.endTime * static_cast<double>(rng() % 101) / 100.0;
      const auto d = r->decide(tlb);
      std::set<db::ItemId> invalidated;
      if (d.action == BsReport::Action::kDropAll) continue;  // trivially safe
      for (const auto& rec : d.marked) invalidated.insert(rec.item);
      for (const auto& [item, t] : rh.lastUpdate) {
        if (t > tlb) {
          EXPECT_TRUE(d.action == BsReport::Action::kInvalidateSet &&
                      invalidated.contains(item))
              << "item " << item << " updated at " << t << " missed for tlb "
              << tlb;
        }
      }
    }
  }
}

TEST(BsReport, PropertyWireDecodeMatchesSnapshotDecide) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 8 + rng() % 200;
    RandomHistory rh(n, rng, static_cast<int>(rng() % 300));
    const auto r = BsReport::build(rh.history, model(n), rh.endTime);
    const BsWire wire = BsWire::encode(*r);

    for (int probe = 0; probe < 15; ++probe) {
      const double tlb =
          rh.endTime * static_cast<double>(rng() % 103) / 100.0 - 1.0;
      const auto d = r->decide(std::max(0.0, tlb));
      const auto w = wire.decode(std::max(0.0, tlb));
      EXPECT_EQ(w.action, d.action) << "n=" << n << " tlb=" << tlb;
      if (d.action == BsReport::Action::kInvalidateSet) {
        std::vector<db::ItemId> snap;
        for (const auto& rec : d.marked) snap.push_back(rec.item);
        std::sort(snap.begin(), snap.end());
        EXPECT_EQ(w.items, snap);
      }
    }
  }
}

TEST(BsWire, WireBitsAtMostNominalFormula) {
  std::mt19937_64 rng(19);
  for (std::size_t n : {16u, 100u, 1024u}) {
    RandomHistory rh(n, rng, 2 * static_cast<int>(n));
    const auto r = BsReport::build(rh.history, model(n), rh.endTime);
    const BsWire wire = BsWire::encode(*r);
    // The wire form shrinks when fewer than N/2 items were ever updated;
    // it never exceeds the nominal structure the airtime model charges.
    EXPECT_LE(wire.wireBits(32), model(n).bsReportBits() + 64);
  }
}

TEST(BsWire, TopLevelHasOneBitPerItem) {
  db::UpdateHistory h(100);
  h.record(42, 5.0);
  const auto r = BsReport::build(h, model(100), 10.0);
  const BsWire wire = BsWire::encode(*r);
  ASSERT_FALSE(wire.levels().empty());
  EXPECT_EQ(wire.levels()[0].bits.size(), 100u);
  EXPECT_TRUE(wire.levels()[0].bits.test(42));
  EXPECT_EQ(wire.levels()[0].bits.count(), 1u);
}

}  // namespace
}  // namespace mci::report

#include "report/sizing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mci::report {
namespace {

SizeModel table1Model(std::size_t n) {
  SizeModel m;
  m.numItems = n;
  m.numClients = 100;
  m.timestampBits = 32;
  return m;
}

TEST(SizeModel, ItemIdBitsIsCeilLog2) {
  EXPECT_EQ(table1Model(2).itemIdBits(), 1);
  EXPECT_EQ(table1Model(1000).itemIdBits(), 10);
  EXPECT_EQ(table1Model(1024).itemIdBits(), 10);
  EXPECT_EQ(table1Model(1025).itemIdBits(), 11);
  EXPECT_EQ(table1Model(80000).itemIdBits(), 17);
}

TEST(SizeModel, ClientIdBits) {
  EXPECT_EQ(table1Model(1000).clientIdBits(), 7);  // 100 clients
}

TEST(SizeModel, TsReportFormula) {
  // |IR(w)| = T + n_w (log2 N + b_T)
  const SizeModel m = table1Model(1024);
  EXPECT_DOUBLE_EQ(m.tsReportBits(0), 32.0);
  EXPECT_DOUBLE_EQ(m.tsReportBits(10), 32.0 + 10 * (10 + 32));
}

TEST(SizeModel, ExtendedReportAddsOneDummyEntry) {
  const SizeModel m = table1Model(1024);
  EXPECT_DOUBLE_EQ(m.extendedReportBits(10), m.tsReportBits(11));
}

TEST(SizeModel, BsReportNearPaperFormula) {
  // Paper: |IR(BS)| = 2N + b_T log2 N. Our exact sum N + N/2 + ... + 2 is
  // within N of 2N, plus one timestamp per sequence.
  for (std::size_t n : {1024u, 10000u, 80000u}) {
    const SizeModel m = table1Model(n);
    const double paper =
        2.0 * static_cast<double>(n) + 32.0 * std::log2(static_cast<double>(n));
    EXPECT_NEAR(m.bsReportBits(), paper, static_cast<double>(n) * 0.1 + 64)
        << "N=" << n;
    // And the BS report must dwarf a typical window report.
    EXPECT_GT(m.bsReportBits(), m.tsReportBits(20));
  }
}

TEST(SizeModel, BsReportGrowsLinearly) {
  const double small = table1Model(1000).bsReportBits();
  const double large = table1Model(80000).bsReportBits();
  EXPECT_GT(large, 60.0 * small / 2.0);  // ~80x items -> ~80x bits
}

TEST(SizeModel, TlbMessageIsTiny) {
  const SizeModel m = table1Model(10000);
  EXPECT_DOUBLE_EQ(m.tlbMessageBits(), 7.0 + 32.0);
  EXPECT_LT(m.tlbMessageBits(), m.checkRequestBits(10));
}

TEST(SizeModel, CheckRequestGrowsWithEntries) {
  const SizeModel m = table1Model(10000);  // idBits = 14
  EXPECT_DOUBLE_EQ(m.checkRequestBits(0), 7.0);
  EXPECT_DOUBLE_EQ(m.checkRequestBits(200), 7.0 + 200.0 * (14 + 32));
}

TEST(SizeModel, ValidityReportBits) {
  const SizeModel m = table1Model(10000);
  EXPECT_DOUBLE_EQ(m.validityReportBits(0), 7.0 + 32.0);
  EXPECT_DOUBLE_EQ(m.validityReportBits(5), 7.0 + 32.0 + 5 * 14.0);
}

TEST(SizeModel, FixedMessageSizesFromTable1) {
  const SizeModel m = table1Model(10000);
  EXPECT_DOUBLE_EQ(m.queryRequestBits(), 512.0 * 8);
  EXPECT_DOUBLE_EQ(m.dataItemBits(), 8192.0 * 8);
}

TEST(SizeModel, SigReportBits) {
  SizeModel m = table1Model(10000);
  m.signatureBits = 32;
  EXPECT_DOUBLE_EQ(m.sigReportBits(512), 32.0 + 512.0 * 32.0);
}

}  // namespace
}  // namespace mci::report

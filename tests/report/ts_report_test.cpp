#include "report/ts_report.hpp"

#include <gtest/gtest.h>

namespace mci::report {
namespace {

SizeModel model(std::size_t n = 1000) {
  SizeModel m;
  m.numItems = n;
  return m;
}

TEST(TsReport, ContainsOnlyWindowUpdates) {
  db::UpdateHistory h(1000);
  h.record(1, 10.0);
  h.record(2, 50.0);
  h.record(3, 90.0);
  const auto r = TsReport::build(h, model(), /*now=*/100.0, /*windowStart=*/40.0);
  ASSERT_EQ(r->entries().size(), 2u);
  EXPECT_EQ(r->entries()[0].item, 3u);  // most recent first
  EXPECT_EQ(r->entries()[1].item, 2u);
  EXPECT_EQ(r->kind, ReportKind::kTsWindow);
  EXPECT_DOUBLE_EQ(r->broadcastTime, 100.0);
  EXPECT_DOUBLE_EQ(r->coverageStart(), 40.0);
}

TEST(TsReport, CoversInsideWindowOnly) {
  db::UpdateHistory h(1000);
  const auto r = TsReport::build(h, model(), 100.0, 40.0);
  EXPECT_TRUE(r->covers(40.0));
  EXPECT_TRUE(r->covers(99.0));
  EXPECT_FALSE(r->covers(39.9));
  EXPECT_FALSE(r->covers(0.0));
}

TEST(TsReport, SizeMatchesFormula) {
  db::UpdateHistory h(1000);
  for (db::ItemId i = 0; i < 7; ++i) h.record(i, 50.0 + i);
  const auto r = TsReport::build(h, model(1000), 100.0, 40.0);
  EXPECT_DOUBLE_EQ(r->sizeBits, model(1000).tsReportBits(7));
}

TEST(TsReport, ReUpdatedItemAppearsOnceWithLatestTime) {
  db::UpdateHistory h(1000);
  h.record(5, 50.0);
  h.record(5, 80.0);
  const auto r = TsReport::build(h, model(), 100.0, 40.0);
  ASSERT_EQ(r->entries().size(), 1u);
  EXPECT_DOUBLE_EQ(r->entries()[0].time, 80.0);
}

TEST(TsReport, ItemUpdatedBeforeWindowButReUpdatedInsideIsListed) {
  db::UpdateHistory h(1000);
  h.record(5, 10.0);  // before window
  h.record(5, 60.0);  // inside window
  const auto r = TsReport::build(h, model(), 100.0, 40.0);
  ASSERT_EQ(r->entries().size(), 1u);
}

TEST(TsReport, ExtendedReportCarriesDummy) {
  db::UpdateHistory h(1000);
  h.record(1, 5.0);
  h.record(2, 95.0);
  const auto r = TsReport::buildExtended(h, model(), 100.0, /*extendStart=*/2.0);
  EXPECT_TRUE(r->extended());
  EXPECT_EQ(r->kind, ReportKind::kTsExtended);
  EXPECT_DOUBLE_EQ(r->dummyTlb(), 2.0);
  EXPECT_EQ(r->entries().size(), 2u);
  // Extended coverage: a client with Tlb >= 2.0 is covered.
  EXPECT_TRUE(r->covers(2.0));
  EXPECT_TRUE(r->covers(50.0));
  EXPECT_FALSE(r->covers(1.0));
  // Size pays for the dummy record.
  EXPECT_DOUBLE_EQ(r->sizeBits, model().extendedReportBits(2));
}

TEST(TsReport, EmptyWindow) {
  db::UpdateHistory h(1000);
  h.record(1, 10.0);
  const auto r = TsReport::build(h, model(), 100.0, 50.0);
  EXPECT_TRUE(r->entries().empty());
  EXPECT_DOUBLE_EQ(r->sizeBits, model().tsReportBits(0));
}

}  // namespace
}  // namespace mci::report

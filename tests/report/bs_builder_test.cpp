// BsBuilder memoization: rebroadcasts of an unchanged history must be
// byte-for-byte equivalent to a fresh build (only the broadcast timestamp
// differs), and any history change must invalidate the cache.

#include <gtest/gtest.h>

#include <vector>

#include "db/update_history.hpp"
#include "report/bs_report.hpp"

namespace mci::report {
namespace {

SizeModel model(std::size_t n) {
  SizeModel m;
  m.numItems = n;
  return m;
}

void expectEquivalent(const BsReport& a, const BsReport& b) {
  EXPECT_EQ(a.numItems(), b.numItems());
  EXPECT_DOUBLE_EQ(a.coverageStart(), b.coverageStart());
  EXPECT_DOUBLE_EQ(a.lastUpdateTime(), b.lastUpdateTime());
  ASSERT_EQ(a.levels().size(), b.levels().size());
  for (std::size_t i = 0; i < a.levels().size(); ++i) {
    EXPECT_EQ(a.levels()[i].marked, b.levels()[i].marked) << "level " << i;
    EXPECT_DOUBLE_EQ(a.levels()[i].ts, b.levels()[i].ts) << "level " << i;
  }
  ASSERT_EQ(a.recency().size(), b.recency().size());
  for (std::size_t i = 0; i < a.recency().size(); ++i) {
    EXPECT_EQ(a.recency()[i].item, b.recency()[i].item) << "entry " << i;
    EXPECT_DOUBLE_EQ(a.recency()[i].time, b.recency()[i].time)
        << "entry " << i;
  }
}

TEST(BsBuilderTest, RebroadcastOfUnchangedHistoryHitsCache) {
  db::UpdateHistory h(64);
  for (db::ItemId i = 0; i < 10; ++i) h.record(i, 5.0 * (i + 1));
  BsBuilder builder;
  const auto first = builder.build(h, model(64), 100.0);
  EXPECT_EQ(builder.cacheHits(), 0u);
  const auto second = builder.build(h, model(64), 120.0);
  EXPECT_EQ(builder.cacheHits(), 1u);
  EXPECT_DOUBLE_EQ(second->broadcastTime, 120.0);
  // The cached rebroadcast shares the recency snapshot.
  EXPECT_EQ(&first->recency(), &second->recency());
  expectEquivalent(*first, *second);
}

TEST(BsBuilderTest, CachedRebroadcastMatchesFreshBuild) {
  db::UpdateHistory h(128);
  for (db::ItemId i = 0; i < 40; ++i) h.record(i % 16, 2.0 * (i + 1));
  BsBuilder builder;
  (void)builder.build(h, model(128), 90.0);
  const auto cached = builder.build(h, model(128), 110.0);
  EXPECT_EQ(builder.cacheHits(), 1u);
  const auto fresh = BsReport::build(h, model(128), 110.0);
  EXPECT_DOUBLE_EQ(cached->broadcastTime, fresh->broadcastTime);
  expectEquivalent(*cached, *fresh);
  // Decisions agree for every interesting last-heard time.
  for (double tlb = 0.0; tlb <= 110.0; tlb += 7.0) {
    const auto dc = cached->decide(tlb);
    const auto df = fresh->decide(tlb);
    EXPECT_EQ(dc.action, df.action) << "tlb=" << tlb;
    EXPECT_EQ(dc.marked.size(), df.marked.size()) << "tlb=" << tlb;
  }
}

TEST(BsBuilderTest, HistoryChangeInvalidatesCache) {
  db::UpdateHistory h(64);
  h.record(1, 10.0);
  BsBuilder builder;
  (void)builder.build(h, model(64), 20.0);
  h.record(2, 25.0);  // revision bump
  const auto after = builder.build(h, model(64), 40.0);
  EXPECT_EQ(builder.cacheHits(), 0u);
  const auto fresh = BsReport::build(h, model(64), 40.0);
  expectEquivalent(*after, *fresh);
  // And the new snapshot caches again.
  (void)builder.build(h, model(64), 60.0);
  EXPECT_EQ(builder.cacheHits(), 1u);
}

TEST(BsBuilderTest, WireEncodingOfCachedReportMatchesFresh) {
  db::UpdateHistory h(64);
  for (db::ItemId i = 0; i < 20; ++i) h.record((i * 7) % 32, 3.0 * (i + 1));
  BsBuilder builder;
  (void)builder.build(h, model(64), 70.0);
  const auto cached = builder.build(h, model(64), 85.0);
  EXPECT_EQ(builder.cacheHits(), 1u);
  const auto fresh = BsReport::build(h, model(64), 85.0);
  const BsWire wireCached = BsWire::encode(*cached);
  const BsWire wireFresh = BsWire::encode(*fresh);
  ASSERT_EQ(wireCached.levels().size(), wireFresh.levels().size());
  for (std::size_t l = 0; l < wireCached.levels().size(); ++l) {
    const auto& wc = wireCached.levels()[l];
    const auto& wf = wireFresh.levels()[l];
    EXPECT_DOUBLE_EQ(wc.ts, wf.ts) << "level " << l;
    ASSERT_EQ(wc.bits.size(), wf.bits.size()) << "level " << l;
    for (std::size_t b = 0; b < wc.bits.size(); ++b) {
      ASSERT_EQ(wc.bits.test(b), wf.bits.test(b))
          << "level " << l << " bit " << b;
    }
  }
  // encodeInto reuses storage and produces the same bits.
  BsWire scratch;
  BsWire::encodeInto(*cached, scratch);
  ASSERT_EQ(scratch.levels().size(), wireFresh.levels().size());
  for (std::size_t l = 0; l < scratch.levels().size(); ++l) {
    ASSERT_EQ(scratch.levels()[l].bits.size(),
              wireFresh.levels()[l].bits.size());
    for (std::size_t b = 0; b < scratch.levels()[l].bits.size(); ++b) {
      ASSERT_EQ(scratch.levels()[l].bits.test(b),
                wireFresh.levels()[l].bits.test(b));
    }
  }
}

}  // namespace
}  // namespace mci::report

#include "report/bitvec.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace mci::report {
namespace {

TEST(BitVec, StartsAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVec, SetAndTest) {
  BitVec v(100);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(99));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 4u);
}

TEST(BitVec, ResetClearsBit) {
  BitVec v(10);
  v.set(5);
  v.reset(5);
  EXPECT_FALSE(v.test(5));
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, RankCountsBefore) {
  BitVec v(130);
  v.set(3);
  v.set(64);
  v.set(100);
  EXPECT_EQ(v.rank(0), 0u);
  EXPECT_EQ(v.rank(3), 0u);
  EXPECT_EQ(v.rank(4), 1u);
  EXPECT_EQ(v.rank(64), 1u);
  EXPECT_EQ(v.rank(65), 2u);
  EXPECT_EQ(v.rank(130), 3u);
}

TEST(BitVec, SelectFindsKthSetBit) {
  BitVec v(130);
  v.set(3);
  v.set(64);
  v.set(100);
  EXPECT_EQ(v.select(0), 3u);
  EXPECT_EQ(v.select(1), 64u);
  EXPECT_EQ(v.select(2), 100u);
  EXPECT_EQ(v.select(3), v.size());  // out of range
}

TEST(BitVec, SetPositionsAscending) {
  BitVec v(200);
  v.set(150);
  v.set(7);
  v.set(63);
  EXPECT_EQ(v.setPositions(), (std::vector<std::size_t>{7, 63, 150}));
}

TEST(BitVec, RankSelectInverse) {
  // Property: select(rank(p)) == p for every set position p.
  std::mt19937_64 rng(5);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 1 + rng() % 500;
    BitVec v(n);
    std::set<std::size_t> positions;
    for (std::size_t i = 0; i < n / 3 + 1; ++i) {
      const std::size_t p = rng() % n;
      v.set(p);
      positions.insert(p);
    }
    EXPECT_EQ(v.count(), positions.size());
    std::size_t k = 0;
    for (std::size_t p : positions) {
      EXPECT_EQ(v.rank(p), k);
      EXPECT_EQ(v.select(k), p);
      ++k;
    }
    // rank over the whole vector equals the count.
    EXPECT_EQ(v.rank(n), positions.size());
  }
}

TEST(BitVec, WordBoundaryEdges) {
  BitVec v(128);
  v.set(63);
  v.set(64);
  v.set(127);
  EXPECT_EQ(v.rank(64), 1u);
  EXPECT_EQ(v.rank(128), 3u);
  EXPECT_EQ(v.select(2), 127u);
}

TEST(BitVec, EmptyVector) {
  BitVec v(0);
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_EQ(v.rank(0), 0u);
  EXPECT_EQ(v.select(0), 0u);  // == size()
  EXPECT_TRUE(v.setPositions().empty());
}

}  // namespace
}  // namespace mci::report

#include "report/codec.hpp"

#include <gtest/gtest.h>

#include <random>

#include "sim/random.hpp"

namespace mci::report {
namespace {

SizeModel model(std::size_t n = 1000) {
  SizeModel m;
  m.numItems = n;
  return m;
}

// ---------------- BitWriter / BitReader ----------------

TEST(BitIo, RoundTripsAssortedWidths) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xDEADBEEF, 32);
  w.write(1, 1);
  w.write(0x123456789ABCDEFull, 64);
  const auto frame = w.finish();
  EXPECT_EQ(w.bitCount(), 3u + 32 + 1 + 64);
  EXPECT_EQ(frame.size(), (w.bitCount() + 7) / 8);

  BitReader r(frame);
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(32), 0xDEADBEEFu);
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(64), 0x123456789ABCDEFull);
  EXPECT_TRUE(r.ok());
}

TEST(BitIo, UnderrunFlagsNotOk) {
  BitWriter w;
  w.write(7, 3);
  const auto frame = w.finish();
  BitReader r(frame);
  (void)r.read(3);
  EXPECT_TRUE(r.ok());
  (void)r.read(8);  // only padding left
  EXPECT_FALSE(r.ok());
}

TEST(BitIo, SpanConstructorReadsRawBuffers) {
  // The live wire layer runs the cursor straight over framed bytes
  // (header slices) without copying into a vector first.
  const std::uint8_t raw[] = {0x4D, 0x43, 0xA5};
  BitReader r(raw, sizeof raw);
  EXPECT_EQ(r.read(16), 0x4D43u);
  EXPECT_EQ(r.read(8), 0xA5u);
  EXPECT_TRUE(r.ok());
  (void)r.read(1);
  EXPECT_FALSE(r.ok());
}

TEST(BitIo, SkipAdvancesWithoutDecodingAndUnderrunsLikeRead) {
  BitWriter w;
  w.write(0xFFFF, 16);
  w.write(0x2A, 8);
  const auto frame = w.finish();
  BitReader r(frame);
  r.skip(16);
  EXPECT_EQ(r.bitsRead(), 16u);
  EXPECT_EQ(r.read(8), 0x2Au);
  EXPECT_TRUE(r.ok());
  r.skip(1);
  EXPECT_FALSE(r.ok());
}

TEST(BitIo, FitsBoundsCountsByRemainingBits) {
  BitWriter w;
  w.write(3, 16);        // a count field
  w.write(0, 3 * 10);    // three 10-bit elements
  const auto frame = w.finish();
  BitReader r(frame);
  const std::uint64_t count = r.read(16);
  EXPECT_TRUE(r.fits(count, 10));
  EXPECT_FALSE(r.fits(count + 1, 10));  // 32 bits left: no 4th element
  EXPECT_FALSE(r.fits(~std::uint64_t{0}, 64));  // no overflow on huge counts
  (void)r.read(64);  // underrun
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.fits(0, 1)) << "a dead cursor fits nothing";
}

TEST(BitIo, UnderrunParksTheCursorAtTheEnd) {
  BitWriter w;
  w.write(1, 8);
  const auto frame = w.finish();
  BitReader r(frame);
  (void)r.read(64);  // underrun: returns 0, ok() false
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.bitsRead(), 8u);  // parked, not pushed past the span
  EXPECT_EQ(r.read(8), 0u);     // and it stays failed
  EXPECT_FALSE(r.ok());
}

TEST(BitIo, RandomizedRoundTrip) {
  std::mt19937_64 rng(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::pair<std::uint64_t, int>> fields;
    BitWriter w;
    for (int i = 0; i < 100; ++i) {
      const int bits = 1 + static_cast<int>(rng() % 64);
      const std::uint64_t value =
          bits == 64 ? rng() : rng() & ((std::uint64_t{1} << bits) - 1);
      fields.emplace_back(value, bits);
      w.write(value, bits);
    }
    const auto frame = w.finish();
    BitReader r(frame);
    for (const auto& [value, bits] : fields) {
      EXPECT_EQ(r.read(bits), value);
    }
    EXPECT_TRUE(r.ok());
  }
}

// ---------------- timestamp quantization ----------------

TEST(ReportCodec, QuantizationIsMillisecondAccurate) {
  const auto sizes = model();
  ReportCodec codec(sizes);
  for (double t : {0.0, 0.1234, 99.999, 100000.0}) {
    EXPECT_NEAR(codec.dequantize(codec.quantize(t)), t, 1e-3) << t;
  }
}

TEST(ReportCodec, QuantizationSaturatesInsteadOfWrapping) {
  SizeModel sizes = model();
  sizes.timestampBits = 8;  // tiny field: 255 ticks max
  ReportCodec codec(sizes, 1.0);
  EXPECT_EQ(codec.quantize(1e9), 255u);
  EXPECT_EQ(codec.quantize(-5.0), 0u);
}

// ---------------- TS reports ----------------

TEST(ReportCodec, TsReportRoundTrip) {
  const auto sizes = model();
  ReportCodec codec(sizes);
  db::UpdateHistory h(1000);
  h.record(17, 55.5);
  h.record(444, 70.25);
  const auto original = TsReport::build(h, sizes, 100.0, 40.0);

  const auto frame = codec.encode(*original);
  EXPECT_EQ(codec.peekKind(frame), ReportKind::kTsWindow);
  const auto decoded = codec.decodeTs(frame);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->kind, ReportKind::kTsWindow);
  EXPECT_NEAR(decoded->broadcastTime, 100.0, 1e-3);
  EXPECT_NEAR(decoded->coverageStart(), 40.0, 1e-3);
  ASSERT_EQ(decoded->entries().size(), 2u);
  EXPECT_EQ(decoded->entries()[0].item, 444u);
  EXPECT_NEAR(decoded->entries()[0].time, 70.25, 1e-3);
  EXPECT_EQ(decoded->entries()[1].item, 17u);
  EXPECT_NEAR(decoded->entries()[1].time, 55.5, 1e-3);
}

TEST(ReportCodec, ExtendedReportKeepsDummySemantics) {
  const auto sizes = model();
  ReportCodec codec(sizes);
  db::UpdateHistory h(1000);
  h.record(1, 50.0);
  const auto original = TsReport::buildExtended(h, sizes, 100.0, 30.0);
  const auto frame = codec.encode(*original);
  EXPECT_EQ(codec.peekKind(frame), ReportKind::kTsExtended);
  const auto decoded = codec.decodeTs(frame);
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(decoded->extended());
  EXPECT_NEAR(decoded->dummyTlb(), 30.0, 1e-3);
  EXPECT_TRUE(decoded->covers(30.001));
  EXPECT_FALSE(decoded->covers(29.0));
}

TEST(ReportCodec, TsFrameSizeTracksTheBitModel) {
  const auto sizes = model(10000);
  ReportCodec codec(sizes);
  db::UpdateHistory h(10000);
  for (db::ItemId i = 0; i < 50; ++i) h.record(i, 10.0 + i);
  const auto r = TsReport::build(h, sizes, 100.0, 5.0);
  const auto frame = codec.encode(*r);
  const double actualBits = static_cast<double>(frame.size()) * 8;
  EXPECT_GE(actualBits, r->sizeBits);
  EXPECT_LE(actualBits, r->sizeBits + ReportCodec::kCodecHeaderSlackBits);
}

// ---------------- BS reports ----------------

TEST(ReportCodec, BsReportRoundTripPreservesDecisions) {
  const auto sizes = model(256);
  ReportCodec codec(sizes);
  db::UpdateHistory h(256);
  sim::Rng rng(4);
  double t = 0;
  for (int i = 0; i < 300; ++i) {
    t += rng.exponential(3.0);
    h.record(static_cast<db::ItemId>(rng.uniformInt(0, 255)), t);
  }
  const auto original = BsReport::build(h, sizes, t + 1);
  const auto frame = codec.encode(*original);
  EXPECT_EQ(codec.peekKind(frame), ReportKind::kBitSeq);
  const auto decoded = codec.decodeBs(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NEAR(decoded->broadcastTime, t + 1, 1e-3);

  // The decoded wire must make the same decision as the original for any
  // Tlb (up to the timestamp quantum, so probe mid-interval points).
  const BsWire direct = BsWire::encode(*original);
  for (double probe = 0.5; probe < t; probe += t / 17.0) {
    const auto a = direct.decode(probe);
    const auto b = decoded->wire.decode(probe);
    EXPECT_EQ(a.action, b.action) << probe;
    EXPECT_EQ(a.items, b.items) << probe;
  }
}

TEST(ReportCodec, BsFrameSizeTracksTheWireModel) {
  const auto sizes = model(1024);
  ReportCodec codec(sizes);
  db::UpdateHistory h(1024);
  for (db::ItemId i = 0; i < 600; ++i) h.record(i, 1.0 + i);
  const auto r = BsReport::build(h, sizes, 1000.0);
  const BsWire wire = BsWire::encode(*r);
  const auto frame = codec.encode(*r);
  const double actualBits = static_cast<double>(frame.size()) * 8;
  EXPECT_GE(actualBits, wire.wireBits(sizes.timestampBits) - 8);
  EXPECT_LE(actualBits, wire.wireBits(sizes.timestampBits) +
                            ReportCodec::kCodecHeaderSlackBits);
}

// ---------------- SIG reports ----------------

TEST(ReportCodec, SigReportRoundTripsTruncatedSignatures) {
  const auto sizes = model(100);
  ReportCodec codec(sizes);
  SignatureTable table(100, 16, 3, 5);
  const auto original = SigReport::build(table, sizes, 60.0);
  const auto frame = codec.encode(*original);
  EXPECT_EQ(codec.peekKind(frame), ReportKind::kSignature);
  const auto decoded = codec.decodeSig(frame);
  ASSERT_NE(decoded, nullptr);
  ASSERT_EQ(decoded->combined().size(), 16u);
  const std::uint64_t mask = (std::uint64_t{1} << sizes.signatureBits) - 1;
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(decoded->combined()[i], original->combined()[i] & mask);
  }
}

// ---------------- robustness ----------------

TEST(ReportCodec, RejectsWrongKindAndTruncation) {
  const auto sizes = model();
  ReportCodec codec(sizes);
  db::UpdateHistory h(1000);
  h.record(1, 5.0);
  const auto ts = TsReport::build(h, sizes, 100.0, 40.0);
  auto frame = codec.encode(*ts);

  EXPECT_FALSE(codec.decodeBs(frame).has_value());
  EXPECT_EQ(codec.decodeSig(frame), nullptr);

  frame.resize(frame.size() / 2);  // truncated mid-record
  EXPECT_EQ(codec.decodeTs(frame), nullptr);

  const std::vector<std::uint8_t> empty;
  EXPECT_FALSE(codec.peekKind(empty).has_value());
}

TEST(ReportCodec, GarbageFramesNeverCrash) {
  const auto sizes = model(500);
  ReportCodec codec(sizes);
  std::mt19937_64 rng(77);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> garbage(rng() % 200);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    // Whatever the bytes say, the decoders must return cleanly.
    (void)codec.peekKind(garbage);
    (void)codec.decodeTs(garbage);
    (void)codec.decodeBs(garbage);
    (void)codec.decodeSig(garbage);
  }
  SUCCEED();
}

TEST(ReportCodec, TruncationSweepIsSafe) {
  const auto sizes = model(128);
  ReportCodec codec(sizes);
  db::UpdateHistory h(128);
  for (db::ItemId i = 0; i < 40; ++i) h.record(i, 1.0 + i);
  const auto r = BsReport::build(h, sizes, 100.0);
  const auto full = codec.encode(*r);
  ASSERT_TRUE(codec.decodeBs(full).has_value());
  for (std::size_t cut = 0; cut < full.size(); cut += 3) {
    std::vector<std::uint8_t> frame(full.begin(),
                                    full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(codec.decodeBs(frame).has_value()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace mci::report

// Deterministic fuzz for the bit-packing layer and every report codec:
// fixed Xoshiro seeds generate random reports whose encodings must round
// trip byte for byte, and random truncation/corruption must be rejected
// cleanly (BitReader::ok(), codec nullptr/nullopt, frame checksum) rather
// than crash or return garbage as if valid.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "db/update_history.hpp"
#include "live/wire.hpp"
#include "report/codec.hpp"
#include "sim/random.hpp"

namespace mci::report {
namespace {

constexpr std::uint64_t kFuzzSeed = 0xF022CAFE;
constexpr int kRounds = 50;

/// Times on the codec's millisecond tick grid round trip exactly.
sim::SimTime randomTickTime(sim::Rng& rng, std::uint64_t maxTick) {
  return static_cast<double>(rng.uniformInt(0, static_cast<std::int64_t>(
                                                   maxTick))) *
         1e-3;
}

SizeModel smallSizes() {
  core::SimConfig cfg;
  cfg.dbSize = 512;
  return cfg.sizeModel();
}

TEST(BitPackingFuzz, RandomWriteSequencesReadBackExactly) {
  sim::Rng rng(kFuzzSeed);
  for (int round = 0; round < kRounds; ++round) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, int>> writes;
    const int n = static_cast<int>(rng.uniformInt(1, 200));
    for (int i = 0; i < n; ++i) {
      const int bits = static_cast<int>(rng.uniformInt(1, 64));
      const std::uint64_t value = rng.bits();
      writes.emplace_back(value, bits);
      w.write(value, bits);
    }
    const std::vector<std::uint8_t> bytes = w.finish();
    EXPECT_EQ(bytes.size(), (w.bitCount() + 7) / 8);

    BitReader r(bytes);
    for (const auto& [value, bits] : writes) {
      const std::uint64_t mask =
          bits == 64 ? ~0ull : ((1ull << bits) - 1);
      EXPECT_EQ(r.read(bits), value & mask);
      EXPECT_TRUE(r.ok());
    }
    EXPECT_EQ(r.bitsRead(), w.bitCount());
  }
}

TEST(BitPackingFuzz, ReadingPastTheEndClearsOkInsteadOfCrashing) {
  sim::Rng rng(kFuzzSeed + 1);
  for (int round = 0; round < kRounds; ++round) {
    BitWriter w;
    const int n = static_cast<int>(rng.uniformInt(0, 20));
    for (int i = 0; i < n; ++i) w.write(rng.bits(), 13);
    const std::vector<std::uint8_t> bytes = w.finish();

    BitReader r(bytes);
    // Read more 13-bit fields than were written: the overrun read returns 0
    // and ok() latches false.
    for (int i = 0; i < n + 3; ++i) (void)r.read(13);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.read(13), 0u);  // still safe after failure
  }
}

TEST(BitPackingFuzz, BulkBitVecWritesInterleavedWithScalarsRoundTrip) {
  // The word-at-a-time writeBitVec/readBitVec paths, at every alignment the
  // scalar writes before them can produce: random interleavings of scalar
  // fields and bit vectors of random width/density must read back exactly,
  // and the byte stream must be what the per-bit path would have emitted
  // (codec_word_test pins that; here we shake the alignment space).
  sim::Rng rng(kFuzzSeed + 8);
  for (int round = 0; round < kRounds; ++round) {
    BitWriter w;
    struct Op {
      bool isVec;
      std::uint64_t value;
      int bits;
      BitVec vec;
    };
    std::vector<Op> ops;
    const int n = static_cast<int>(rng.uniformInt(1, 30));
    for (int i = 0; i < n; ++i) {
      Op op;
      op.isVec = rng.bernoulli(0.5);
      if (op.isVec) {
        const auto len =
            static_cast<std::size_t>(rng.uniformInt(0, 300));
        const double density = rng.uniform01();
        op.vec.assign(len);
        for (std::size_t b = 0; b < len; ++b) {
          if (rng.uniform01() < density) op.vec.set(b);
        }
        w.writeBitVec(op.vec);
      } else {
        op.bits = static_cast<int>(rng.uniformInt(1, 64));
        op.value = rng.bits();
        w.write(op.value, op.bits);
      }
      ops.push_back(std::move(op));
    }
    const std::vector<std::uint8_t> bytes = w.finish();

    BitReader r(bytes);
    for (const Op& op : ops) {
      if (op.isVec) {
        BitVec back;
        r.readBitVec(back, op.vec.size());
        ASSERT_TRUE(r.ok()) << "round " << round;
        ASSERT_EQ(back.size(), op.vec.size());
        for (std::size_t b = 0; b < back.size(); ++b) {
          ASSERT_EQ(back.test(b), op.vec.test(b))
              << "round " << round << " bit " << b;
        }
      } else {
        const std::uint64_t mask =
            op.bits == 64 ? ~0ull : ((1ull << op.bits) - 1);
        ASSERT_EQ(r.read(op.bits), op.value & mask) << "round " << round;
      }
    }
    EXPECT_EQ(r.bitsRead(), w.bitCount());

    // Asking for one bit past the padded byte stream must fail cleanly
    // from whatever alignment the round ended on.
    BitVec overrun;
    r.readBitVec(overrun, bytes.size() * 8 - r.bitsRead() + 1);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(overrun.size(), 0u);
  }
}

TEST(CodecFuzz, TsReportsRoundTripByteForByte) {
  sim::Rng rng(kFuzzSeed + 2);
  const SizeModel sizes = smallSizes();
  const ReportCodec codec(sizes);
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t nowTick = 1000 + 2000 * static_cast<std::uint64_t>(
                                             rng.uniformInt(1, 1000));
    const sim::SimTime now = static_cast<double>(nowTick) * 1e-3;
    const sim::SimTime coverage = randomTickTime(rng, nowTick / 2);
    std::vector<db::UpdateRecord> entries;
    const int n = static_cast<int>(rng.uniformInt(0, 40));
    for (int i = 0; i < n; ++i) {
      entries.push_back(
          {.item = static_cast<db::ItemId>(rng.uniformInt(0, 511)),
           .time = coverage +
                   randomTickTime(rng, nowTick / 2)});
    }
    const bool extended = rng.bernoulli(0.5);
    const auto r =
        extended ? TsReport::fromParts(ReportKind::kTsExtended, sizes, now,
                                       coverage, entries)
                 : TsReport::fromParts(ReportKind::kTsWindow, sizes, now,
                                       coverage, entries);

    const std::vector<std::uint8_t> bytes = codec.encode(*r);
    const auto decoded = codec.decodeTs(bytes);
    ASSERT_NE(decoded, nullptr) << "round " << round;
    EXPECT_EQ(decoded->kind, r->kind);
    EXPECT_EQ(decoded->entries().size(), r->entries().size());
    EXPECT_EQ(codec.encode(*decoded), bytes) << "round " << round;

    const auto any = codec.decodeAny(bytes);
    ASSERT_NE(any, nullptr);
    EXPECT_EQ(any->kind, r->kind);
  }
}

TEST(CodecFuzz, BsReportsRoundTripByteForByte) {
  sim::Rng rng(kFuzzSeed + 3);
  const SizeModel sizes = smallSizes();
  const ReportCodec codec(sizes);
  for (int round = 0; round < kRounds; ++round) {
    db::UpdateHistory history(512);
    const int updates = static_cast<int>(rng.uniformInt(0, 300));
    std::uint64_t tick = 0;
    for (int i = 0; i < updates; ++i) {
      tick += static_cast<std::uint64_t>(rng.uniformInt(1, 50));
      history.record(static_cast<db::ItemId>(rng.uniformInt(0, 511)),
                     static_cast<double>(tick) * 1e-3);
    }
    const sim::SimTime now = static_cast<double>(tick + 1000) * 1e-3;
    const auto r = BsReport::build(history, sizes, now);

    const std::vector<std::uint8_t> bytes = codec.encode(*r);
    const auto decoded = codec.decodeBs(bytes);
    ASSERT_TRUE(decoded.has_value()) << "round " << round;
    const auto lifted =
        BsReport::fromWire(decoded->wire, sizes, decoded->broadcastTime);
    ASSERT_NE(lifted, nullptr);
    EXPECT_EQ(codec.encode(*lifted), bytes) << "round " << round;
  }
}

TEST(CodecFuzz, SigReportsRoundTripByteForByte) {
  sim::Rng rng(kFuzzSeed + 4);
  const SizeModel sizes = smallSizes();
  const ReportCodec codec(sizes);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::uint64_t> combined;
    const int n = static_cast<int>(rng.uniformInt(0, 64));
    // Raw 64-bit values: the encoder keeps only signatureBits of each, so
    // the byte-level round trip must still be exact.
    for (int i = 0; i < n; ++i) combined.push_back(rng.bits());
    const sim::SimTime now = randomTickTime(rng, 1u << 30);
    const auto r = SigReport::fromParts(sizes, now, std::move(combined));

    const std::vector<std::uint8_t> bytes = codec.encode(*r);
    const auto decoded = codec.decodeSig(bytes);
    ASSERT_NE(decoded, nullptr) << "round " << round;
    EXPECT_EQ(codec.encode(*decoded), bytes) << "round " << round;
  }
}

TEST(CodecFuzz, TruncatedFramesAreRejectedNotMisread) {
  sim::Rng rng(kFuzzSeed + 5);
  const SizeModel sizes = smallSizes();
  const ReportCodec codec(sizes);
  std::vector<db::UpdateRecord> entries;
  for (int i = 0; i < 20; ++i) {
    entries.push_back({.item = static_cast<db::ItemId>(i),
                       .time = 1.0 + 0.001 * i});
  }
  const auto r =
      TsReport::fromParts(ReportKind::kTsWindow, sizes, 100.0, 0.5, entries);
  const std::vector<std::uint8_t> bytes = codec.encode(*r);

  for (int round = 0; round < kRounds; ++round) {
    const auto cut = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(bytes.size()) - 1));
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    // Either rejected outright or decoded from the bits that survived; it
    // must never read past the buffer (ASan-checked) nor fabricate more
    // entries than the original had.
    if (const auto decoded = codec.decodeTs(truncated)) {
      EXPECT_LE(decoded->entries().size(), entries.size());
    }
    EXPECT_EQ(codec.decodeAny({}), nullptr);
  }
}

TEST(CodecFuzz, WelcomeV2ShardMapsRoundTripAndRejectDamage) {
  sim::Rng rng(kFuzzSeed + 7);
  for (int round = 0; round < kRounds; ++round) {
    live::wire::Welcome m;
    m.clientId = static_cast<std::uint32_t>(rng.bits());
    m.scheme = static_cast<std::uint8_t>(rng.uniformInt(0, 8));
    m.dbSize = static_cast<std::uint32_t>(rng.uniformInt(1, 1 << 20));
    m.cacheCapacity = static_cast<std::uint32_t>(rng.uniformInt(1, 4096));
    m.broadcastPeriod = randomTickTime(rng, 1u << 20);
    m.timeScale = 1.0 + static_cast<double>(rng.uniformInt(0, 1000));
    m.sigSeed = rng.bits();

    const auto shards = static_cast<std::uint32_t>(rng.uniformInt(1, 12));
    std::vector<live::ShardEndpoint> eps;
    for (std::uint32_t s = 0; s < shards; ++s) {
      live::ShardEndpoint ep;
      ep.ipv4 = static_cast<std::uint32_t>(rng.bits());
      ep.tcpPort = static_cast<std::uint16_t>(rng.uniformInt(1, 65535));
      if (rng.bernoulli(0.5)) {
        ep.multicastIpv4 = 0xE0000000u | (static_cast<std::uint32_t>(rng.bits()) &
                                          0x0FFFFFFFu);
        ep.multicastPort = static_cast<std::uint16_t>(rng.uniformInt(1, 65535));
      }
      eps.push_back(ep);
    }
    m.shardMap = live::ShardMap(static_cast<std::uint32_t>(rng.bits()),
                                rng.bits(), std::move(eps));
    m.shardIndex = static_cast<std::uint16_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(shards) - 1));

    const std::vector<std::uint8_t> bytes = live::wire::encodeWelcome(m);
    const auto back = live::wire::decodeWelcome(bytes);
    ASSERT_TRUE(back.has_value()) << "round " << round;
    EXPECT_EQ(back->shardIndex, m.shardIndex);
    EXPECT_EQ(back->shardMap, m.shardMap);
    EXPECT_EQ(live::wire::encodeWelcome(*back), bytes) << "round " << round;

    // Any truncation loses shard-map tail bytes and must be refused — a
    // client configuring its whole link set from a half map would route
    // queries to daemons that do not own them.
    const auto cut = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(bytes.size()) - 1));
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_FALSE(live::wire::decodeWelcome(truncated).has_value())
        << "cut=" << cut;

    // A corrupted shard count must be bounded by kMaxShards, not allocated.
    auto bad = bytes;
    const auto bit = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(bad.size()) * 8 - 1));
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (const auto damaged = live::wire::decodeWelcome(bad)) {
      EXPECT_LE(damaged->shardMap.shardCount(), live::ShardMap::kMaxShards);
      EXPECT_LT(damaged->shardIndex, damaged->shardMap.shardCount());
    }
  }
}

TEST(CodecFuzz, FrameBufferResyncsPastACorruptFrameSplitAcrossReads) {
  const SizeModel sizes = smallSizes();
  const ReportCodec codec(sizes);
  const auto r = TsReport::fromParts(ReportKind::kTsWindow, sizes, 60.0, 10.0,
                                     {{.item = 7, .time = 20.0}});
  const auto payload = codec.encode(*r);
  const auto good =
      live::wire::encodeFrame(live::wire::FrameType::kReport, 0,
                              net::TrafficClass::kInvalidationReport, payload);
  auto corrupt = good;
  ASSERT_FALSE(corrupt.empty());
  corrupt.back() ^= 0x5A;  // payload damage: checksum fails

  // TCP hands the receiver the corrupt frame in two arbitrary pieces, the
  // split landing inside the frame; the buffer must hold state across the
  // reads, reject the reassembled frame on checksum, then resync onto the
  // good frame that follows.
  for (std::size_t split = 1; split < corrupt.size(); ++split) {
    live::wire::FrameBuffer buf;
    buf.append(corrupt.data(), split);
    EXPECT_FALSE(buf.next().has_value()) << "half a frame decoded";
    buf.append(corrupt.data() + split, corrupt.size() - split);
    buf.append(good.data(), good.size());

    const auto frame = buf.next();
    ASSERT_TRUE(frame.has_value()) << "split=" << split;
    EXPECT_EQ(frame->header.type, live::wire::FrameType::kReport);
    EXPECT_EQ(frame->payload, payload);
    EXPECT_EQ(buf.badFrames(), 1u);
    EXPECT_FALSE(buf.corrupt()) << "checksum skip must not poison the stream";
    EXPECT_FALSE(buf.next().has_value());
  }
}

TEST(CodecFuzz, CorruptedWireFramesFailTheHeaderChecksum) {
  sim::Rng rng(kFuzzSeed + 6);
  const SizeModel sizes = smallSizes();
  const ReportCodec codec(sizes);
  const auto r = TsReport::fromParts(ReportKind::kTsWindow, sizes, 60.0, 10.0,
                                     {{.item = 1, .time = 20.0}});
  const auto frame =
      live::wire::encodeFrame(live::wire::FrameType::kReport, 0,
                              net::TrafficClass::kInvalidationReport,
                              codec.encode(*r));
  ASSERT_TRUE(live::wire::decodeFrame(frame.data(), frame.size()).has_value());

  for (int round = 0; round < kRounds; ++round) {
    auto bad = frame;
    const auto bit = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(bad.size()) * 8 - 1));
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(live::wire::decodeFrame(bad.data(), bad.size()).has_value())
        << "flipped bit " << bit;
  }
}

}  // namespace
}  // namespace mci::report

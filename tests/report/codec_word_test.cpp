// Golden-frame coverage for the word-at-a-time codec serialization. The
// BitWriter/BitReader bulk BitVec paths replaced single-bit loops; these
// tests hold them byte-identical to an in-file single-bit reference writer
// across every alignment, width class (0, 1, word-1, word, word+1, 10k)
// and density, pin the exact wire bytes of each report family as hex, and
// exercise the FrameArena against encodeFrame.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/update_history.hpp"
#include "live/wire.hpp"
#include "net/message.hpp"
#include "report/codec.hpp"
#include "sim/random.hpp"

namespace mci::report {
namespace {

// ---------------------------------------------------------------------------
// Reference single-bit writer: the serialization loop as it was before the
// word-at-a-time rewrite — one append per bit, MSB-first within each byte.
// ---------------------------------------------------------------------------

struct BitLoopWriter {
  std::vector<std::uint8_t> out;
  std::size_t bitCount = 0;

  void writeBit(std::uint64_t bit) {
    if (bitCount % 8 == 0) out.push_back(0);
    out[bitCount / 8] |=
        static_cast<std::uint8_t>((bit & 1) << (7 - bitCount % 8));
    ++bitCount;
  }
  void write(std::uint64_t value, int bits) {
    for (int b = bits - 1; b >= 0; --b) writeBit((value >> b) & 1);
  }
  void writeBitVec(const BitVec& bits) {
    for (std::size_t i = 0; i < bits.size(); ++i) {
      writeBit(bits.test(i) ? 1 : 0);
    }
  }
};

std::string hex(const std::vector<std::uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xF]);
  }
  return s;
}

BitVec randomVec(sim::Rng& rng, std::size_t n, double density) {
  BitVec v;
  v.assign(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform01() < density) v.set(i);
  }
  return v;
}

bool sameBits(const BitVec& a, const BitVec& b) {
  return a.size() == b.size() &&
         std::ranges::equal(a.words(), b.words());
}

constexpr std::size_t kWidths[] = {0, 1, 63, 64, 65, 10000};
constexpr double kDensities[] = {0.0, 0.01, 0.5, 0.99, 1.0};

// ---------------------------------------------------------------------------
// Bulk writer/reader vs the bit loop
// ---------------------------------------------------------------------------

TEST(WordCodec, WriteBitVecMatchesBitLoopAcrossWidthsAndDensities) {
  sim::Rng rng(0xC0DEC);
  for (const std::size_t n : kWidths) {
    for (const double density : kDensities) {
      const BitVec v = randomVec(rng, n, density);
      // prefix 0 = byte-aligned fast path; 3 = the unaligned word path.
      for (const int prefixBits : {0, 3}) {
        BitWriter w;
        BitLoopWriter ref;
        if (prefixBits != 0) {
          w.write(0b101, prefixBits);
          ref.write(0b101, prefixBits);
        }
        w.writeBitVec(v);
        ref.writeBitVec(v);
        EXPECT_EQ(w.bitCount(), ref.bitCount)
            << "n=" << n << " density=" << density
            << " prefix=" << prefixBits;
        EXPECT_EQ(w.finish(), ref.out)
            << "n=" << n << " density=" << density
            << " prefix=" << prefixBits;
      }
    }
  }
}

TEST(WordCodec, ReadBitVecRoundTripsEveryWidthAndAlignment) {
  sim::Rng rng(0xC0DEC + 1);
  for (const std::size_t n : kWidths) {
    for (const double density : {0.01, 0.5, 0.99}) {
      const BitVec v = randomVec(rng, n, density);
      for (const int prefixBits : {0, 5}) {
        BitWriter w;
        if (prefixBits != 0) w.write(0b10110, prefixBits);
        w.writeBitVec(v);
        const std::vector<std::uint8_t> frame = w.finish();

        BitReader r(frame);
        if (prefixBits != 0) {
          EXPECT_EQ(r.read(prefixBits), 0b10110u);
        }
        BitVec back;
        r.readBitVec(back, n);
        EXPECT_TRUE(r.ok()) << "n=" << n << " prefix=" << prefixBits;
        EXPECT_TRUE(sameBits(v, back))
            << "n=" << n << " density=" << density
            << " prefix=" << prefixBits;
      }
    }
  }
}

TEST(WordCodec, ReadBitVecUnderrunLeavesOutputEmpty) {
  BitWriter w;
  w.write(0xAB, 8);
  const std::vector<std::uint8_t> frame = w.finish();

  BitVec out;
  out.assign(5);  // stale content must not survive a failed read
  BitReader r(frame);
  r.readBitVec(out, 9);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(r.bitsRead(), 8u) << "cursor parks at the end";

  // A length near SIZE_MAX must fail the bound check, not overflow it.
  BitReader r2(frame);
  out.assign(5);
  r2.readBitVec(out, std::numeric_limits<std::size_t>::max() - 3);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(out.size(), 0u);
}

TEST(WordCodec, ExternalBufferWriterAppendsAfterExistingBytes) {
  sim::Rng rng(0xC0DEC + 2);
  const BitVec v = randomVec(rng, 130, 0.5);

  BitWriter internal;
  internal.write(0x4D43, 16);
  internal.writeBitVec(v);
  const std::vector<std::uint8_t> expected = internal.finish();

  std::vector<std::uint8_t> buf = {0xDE, 0xAD, 0xBE};
  BitWriter external(buf);
  external.write(0x4D43, 16);
  external.writeBitVec(v);
  EXPECT_EQ(external.bitCount(), internal.bitCount());
  ASSERT_EQ(buf.size(), 3 + expected.size());
  EXPECT_EQ(buf[0], 0xDE);
  EXPECT_EQ(buf[1], 0xAD);
  EXPECT_EQ(buf[2], 0xBE);
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), buf.begin() + 3));
}

// ---------------------------------------------------------------------------
// Codec-level identity: reference encoders replaying the frame layouts of
// report/codec.cpp with the single-bit writer.
// ---------------------------------------------------------------------------

constexpr int kKindBits = 2;
constexpr int kCountBits = 24;
constexpr int kSigCountBits = 16;
constexpr int kLevelCountBits = 6;

std::vector<std::uint8_t> refEncode(const ReportCodec& codec,
                                    const SizeModel& s, const TsReport& r) {
  BitLoopWriter w;
  w.write(0, kKindBits);
  w.write(r.extended() ? 1 : 0, 1);
  w.write(codec.quantize(r.broadcastTime), s.timestampBits);
  w.write(codec.quantize(r.coverageStart()), s.timestampBits);
  w.write(r.entries().size(), kCountBits);
  for (const db::UpdateRecord& rec : r.entries()) {
    w.write(rec.item, s.itemIdBits());
    w.write(codec.quantize(rec.time), s.timestampBits);
  }
  return w.out;
}

std::vector<std::uint8_t> refEncode(const ReportCodec& codec,
                                    const SizeModel& s, const BsReport& r) {
  const BsWire wire = BsWire::encode(r);
  BitLoopWriter w;
  w.write(1, kKindBits);
  w.write(codec.quantize(r.broadcastTime), s.timestampBits);
  w.write(codec.quantize(wire.tsB0()), s.timestampBits);
  w.write(wire.levels().size(), kLevelCountBits);
  for (const BsWire::WireLevel& level : wire.levels()) {
    w.write(codec.quantize(level.ts), s.timestampBits);
    w.writeBitVec(level.bits);
  }
  return w.out;
}

std::vector<std::uint8_t> refEncode(const ReportCodec& codec,
                                    const SizeModel& s, const SigReport& r) {
  BitLoopWriter w;
  w.write(2, kKindBits);
  w.write(codec.quantize(r.broadcastTime), s.timestampBits);
  w.write(r.combined().size(), kSigCountBits);
  const std::uint64_t mask = s.signatureBits >= 64
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << s.signatureBits) - 1);
  for (std::uint64_t sig : r.combined()) {
    w.write(sig & mask, s.signatureBits);
  }
  return w.out;
}

SizeModel model(std::size_t n) {
  SizeModel m;
  m.numItems = n;
  return m;
}

TEST(WordCodec, TsFramesMatchBitLoopReference) {
  sim::Rng rng(0xC0DEC + 3);
  for (const std::size_t items : {64u, 10000u}) {
    const SizeModel sizes = model(items);
    const ReportCodec codec(sizes);
    for (int round = 0; round < 10; ++round) {
      db::UpdateHistory h(items);
      double t = 0;
      const int n = static_cast<int>(rng.uniformInt(0, 200));
      for (int i = 0; i < n; ++i) {
        t += rng.exponential(0.5);
        h.record(static_cast<db::ItemId>(
                     rng.uniformInt(0, static_cast<int>(items) - 1)),
                 t);
      }
      const auto r = TsReport::build(h, sizes, t + 1, 0.0);
      EXPECT_EQ(codec.encode(*r), refEncode(codec, sizes, *r))
          << "items=" << items << " round=" << round;
    }
  }
}

TEST(WordCodec, BsFramesMatchBitLoopReference) {
  sim::Rng rng(0xC0DEC + 4);
  // Width classes around the word boundary plus a large report, at sparse
  // through saturated update densities.
  for (const std::size_t items : {1u, 63u, 64u, 65u, 10000u}) {
    const SizeModel sizes = model(items);
    const ReportCodec codec(sizes);
    for (const double density : {0.02, 0.5, 1.0}) {
      db::UpdateHistory h(items);
      double t = 0;
      const auto updates =
          static_cast<int>(static_cast<double>(items) * density * 3);
      for (int i = 0; i < updates; ++i) {
        t += rng.exponential(0.5);
        h.record(static_cast<db::ItemId>(
                     rng.uniformInt(0, static_cast<int>(items) - 1)),
                 t);
      }
      const auto r = BsReport::build(h, sizes, t + 1);
      const auto fast = codec.encode(*r);
      EXPECT_EQ(fast, refEncode(codec, sizes, *r))
          << "items=" << items << " density=" << density;

      // And the decoder's bulk readBitVec reproduces the encoder's input.
      const auto decoded = codec.decodeBs(fast);
      ASSERT_TRUE(decoded.has_value()) << "items=" << items;
      EXPECT_EQ(codec.encode(*BsReport::fromWire(decoded->wire, sizes,
                                                 decoded->broadcastTime)),
                fast)
          << "items=" << items << " density=" << density;
    }
  }
}

TEST(WordCodec, SigFramesMatchBitLoopReference) {
  sim::Rng rng(0xC0DEC + 5);
  const SizeModel sizes = model(1000);
  const ReportCodec codec(sizes);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::uint64_t> combined;
    const int n = static_cast<int>(rng.uniformInt(0, 100));
    for (int i = 0; i < n; ++i) combined.push_back(rng.bits());
    const auto r = SigReport::fromParts(sizes, 60.0, std::move(combined));
    EXPECT_EQ(codec.encode(*r), refEncode(codec, sizes, *r)) << round;
  }
}

// ---------------------------------------------------------------------------
// Golden hex pins: the exact bytes of one deterministic frame per family.
// A failure here means the wire layout changed — docs/wire_schema.json and
// every deployed decoder change with it, so this must be deliberate.
// ---------------------------------------------------------------------------

TEST(WordCodec, GoldenTsFrameHexPin) {
  const SizeModel sizes = model(512);
  const ReportCodec codec(sizes);
  const auto r = TsReport::fromParts(
      ReportKind::kTsWindow, sizes, 2.0, 1.0,
      {{.item = 3, .time = 1.5}, {.item = 7, .time = 1.75}});
  EXPECT_EQ(hex(codec.encode(*r)),
            "000000fa0000007d000000403000005dc038000036b0");
}

TEST(WordCodec, GoldenBsFrameHexPin) {
  const SizeModel sizes = model(64);
  const ReportCodec codec(sizes);
  db::UpdateHistory h(64);
  h.record(0, 1.0);
  h.record(63, 2.0);
  h.record(32, 3.0);
  const auto r = BsReport::build(h, sizes, 4.0);
  EXPECT_EQ(hex(codec.encode(*r)),
            "400003e8000002ee0600000000800000008000000100000000e0000000"
            "1c00000003800001f43000007d08");
}

TEST(WordCodec, GoldenSigFrameHexPin) {
  const SizeModel sizes = model(512);
  const ReportCodec codec(sizes);
  const auto r = SigReport::fromParts(
      sizes, 1.0, {0x123456789ABCDEF0ull, 0xFFFFull, 0ull});
  EXPECT_EQ(hex(codec.encode(*r)),
            "800000fa0000e6af37bc00003fffc000000000");
}

// ---------------------------------------------------------------------------
// FrameArena: encode-once fan-out buffer vs the classic encodeFrame.
// ---------------------------------------------------------------------------

TEST(FrameArena, MatchesEncodeFrameByteForByte) {
  const SizeModel sizes = model(512);
  const ReportCodec codec(sizes);
  const auto r = TsReport::fromParts(ReportKind::kTsWindow, sizes, 9.0, 2.0,
                                     {{.item = 11, .time = 5.0}});
  const std::vector<std::uint8_t> payload = codec.encode(*r);
  const std::vector<std::uint8_t> expected = live::wire::encodeFrame(
      live::wire::FrameType::kReport, 2,
      net::TrafficClass::kInvalidationReport, payload);

  live::wire::FrameArena arena;
  report::BitWriter w = arena.begin(live::wire::FrameType::kReport, 2,
                                    net::TrafficClass::kInvalidationReport);
  codec.encodeInto(*r, w);
  arena.finish(w);

  const std::vector<std::uint8_t> got(arena.data(),
                                      arena.data() + arena.size());
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(std::ranges::equal(arena.payload(), payload));

  const auto decoded = live::wire::decodeFrame(arena.data(), arena.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.type, live::wire::FrameType::kReport);
  EXPECT_EQ(decoded->payload, payload);
}

TEST(FrameArena, ReuseAcrossTicksPatchesLengthAndCrcCorrectly) {
  const SizeModel sizes = model(512);
  const ReportCodec codec(sizes);
  live::wire::FrameArena arena;

  // Tick 1: a large frame fills the buffer.
  db::UpdateHistory h(512);
  for (db::ItemId i = 0; i < 100; ++i) h.record(i, 1.0 + i);
  const auto big = TsReport::build(h, sizes, 200.0, 0.0);
  {
    report::BitWriter w =
        arena.begin(live::wire::FrameType::kReport, 0,
                    net::TrafficClass::kInvalidationReport);
    codec.encodeInto(*big, w);
    arena.finish(w);
  }
  const std::vector<std::uint8_t> first(arena.data(),
                                       arena.data() + arena.size());

  // Tick 2: a much smaller frame — stale tail bytes from tick 1 must not
  // leak into the length, CRC, or payload.
  const auto small = TsReport::fromParts(ReportKind::kTsWindow, sizes, 9.0,
                                         2.0, {{.item = 1, .time = 5.0}});
  {
    report::BitWriter w =
        arena.begin(live::wire::FrameType::kReport, 0,
                    net::TrafficClass::kInvalidationReport);
    codec.encodeInto(*small, w);
    arena.finish(w);
  }
  const auto decoded = live::wire::decodeFrame(arena.data(), arena.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, codec.encode(*small));

  // Tick 3: re-encoding tick 1's report reproduces tick 1's bytes exactly.
  {
    report::BitWriter w =
        arena.begin(live::wire::FrameType::kReport, 0,
                    net::TrafficClass::kInvalidationReport);
    codec.encodeInto(*big, w);
    arena.finish(w);
  }
  const std::vector<std::uint8_t> third(arena.data(),
                                       arena.data() + arena.size());
  EXPECT_EQ(third, first);
}

}  // namespace
}  // namespace mci::report

#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace mci::net {
namespace {

using sim::Simulator;

TEST(PriorityLink, SingleTransferTakesSizeOverBandwidth) {
  Simulator s;
  PriorityLink link(s, 1000.0);  // 1000 bps
  double doneAt = -1;
  link.submit(TrafficClass::kBulk, 500.0, [&] { doneAt = s.now(); });
  s.runAll();
  EXPECT_DOUBLE_EQ(doneAt, 0.5);
  EXPECT_DOUBLE_EQ(link.deliveredBits(TrafficClass::kBulk), 500.0);
  EXPECT_EQ(link.deliveredCount(TrafficClass::kBulk), 1u);
}

TEST(PriorityLink, FifoWithinClass) {
  Simulator s;
  PriorityLink link(s, 100.0);
  std::vector<int> order;
  std::vector<double> times;
  for (int i = 0; i < 3; ++i) {
    link.submit(TrafficClass::kBulk, 100.0, [&, i] {
      order.push_back(i);
      times.push_back(s.now());
    });
  }
  s.runAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(PriorityLink, HigherClassPreemptsAndLowerResumes) {
  Simulator s;
  PriorityLink link(s, 100.0);  // 100 bps
  double bulkDone = -1, irDone = -1;
  // Bulk transfer of 1000 bits -> nominally 10 s.
  link.submit(TrafficClass::kBulk, 1000.0, [&] { bulkDone = s.now(); });
  // At t=4, an IR of 200 bits arrives: preempts for 2 s.
  s.schedule(4.0, [&] {
    link.submit(TrafficClass::kInvalidationReport, 200.0,
                [&] { irDone = s.now(); });
  });
  s.runAll();
  EXPECT_DOUBLE_EQ(irDone, 6.0);    // 4 + 200/100
  EXPECT_DOUBLE_EQ(bulkDone, 12.0); // 10 + 2 s of preemption
  // Preemptive-resume: bits are not retransmitted.
  EXPECT_DOUBLE_EQ(link.deliveredBits(TrafficClass::kBulk), 1000.0);
  EXPECT_DOUBLE_EQ(link.busySeconds(TrafficClass::kBulk), 10.0);
  EXPECT_DOUBLE_EQ(link.busySeconds(TrafficClass::kInvalidationReport), 2.0);
}

TEST(PriorityLink, EqualClassDoesNotPreempt) {
  Simulator s;
  PriorityLink link(s, 100.0);
  std::vector<double> done;
  link.submit(TrafficClass::kControl, 100.0, [&] { done.push_back(s.now()); });
  s.schedule(0.5, [&] {
    link.submit(TrafficClass::kControl, 100.0, [&] { done.push_back(s.now()); });
  });
  s.runAll();
  EXPECT_EQ(done, (std::vector<double>{1.0, 2.0}));
}

TEST(PriorityLink, LowerClassWaitsForAllHigher) {
  Simulator s;
  PriorityLink link(s, 100.0);
  std::vector<std::string> order;
  link.submit(TrafficClass::kBulk, 100.0, [&] { order.push_back("bulk1"); });
  link.submit(TrafficClass::kBulk, 100.0, [&] { order.push_back("bulk2"); });
  s.schedule(0.1, [&] {
    link.submit(TrafficClass::kControl, 100.0,
                [&] { order.push_back("control"); });
    link.submit(TrafficClass::kInvalidationReport, 100.0,
                [&] { order.push_back("ir"); });
  });
  s.runAll();
  // bulk1 is preempted by ir; then control; then bulk1 resumes; bulk2 last.
  EXPECT_EQ(order, (std::vector<std::string>{"ir", "control", "bulk1", "bulk2"}));
}

TEST(PriorityLink, DoublePreemptionAccumulates) {
  Simulator s;
  PriorityLink link(s, 100.0);
  double bulkDone = -1;
  link.submit(TrafficClass::kBulk, 1000.0, [&] { bulkDone = s.now(); });
  // Two IRs, at t=2 and t=7, each 100 bits (1 s).
  s.schedule(2.0, [&] {
    link.submit(TrafficClass::kInvalidationReport, 100.0, [] {});
  });
  s.schedule(7.0, [&] {
    link.submit(TrafficClass::kInvalidationReport, 100.0, [] {});
  });
  s.runAll();
  EXPECT_DOUBLE_EQ(bulkDone, 12.0);
  EXPECT_DOUBLE_EQ(link.deliveredBits(TrafficClass::kBulk), 1000.0);
}

TEST(PriorityLink, PreemptedTransferResumesAtHeadOfItsClass) {
  Simulator s;
  PriorityLink link(s, 100.0);
  std::vector<int> order;
  link.submit(TrafficClass::kBulk, 500.0, [&] { order.push_back(1); });
  link.submit(TrafficClass::kBulk, 100.0, [&] { order.push_back(2); });
  s.schedule(1.0, [&] {
    link.submit(TrafficClass::kInvalidationReport, 100.0, [] {});
  });
  s.runAll();
  // Transfer 1 (preempted mid-flight) must still finish before transfer 2.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PriorityLink, CallbackMaySubmitNewWork) {
  Simulator s;
  PriorityLink link(s, 100.0);
  std::vector<double> done;
  link.submit(TrafficClass::kBulk, 100.0, [&] {
    done.push_back(s.now());
    link.submit(TrafficClass::kBulk, 100.0, [&] { done.push_back(s.now()); });
  });
  s.runAll();
  EXPECT_EQ(done, (std::vector<double>{1.0, 2.0}));
}

TEST(PriorityLink, QueuedTransfersCount) {
  Simulator s;
  PriorityLink link(s, 100.0);
  link.submit(TrafficClass::kBulk, 100.0, [] {});
  link.submit(TrafficClass::kBulk, 100.0, [] {});
  link.submit(TrafficClass::kControl, 100.0, [] {});
  EXPECT_TRUE(link.busy());
  // One on the air (bulk, then preempted by control? no: control preempts).
  // After the submits: control preempted bulk -> on air: control; queued:
  // bulk (partial) + bulk.
  EXPECT_EQ(link.queuedTransfers(), 2u);
  s.runAll();
  EXPECT_FALSE(link.busy());
  EXPECT_EQ(link.queuedTransfers(), 0u);
}

TEST(PriorityLink, BusySecondsIncludesInFlightPortion) {
  Simulator s;
  PriorityLink link(s, 100.0);
  link.submit(TrafficClass::kBulk, 1000.0, [] {});
  s.runUntil(3.0);
  EXPECT_DOUBLE_EQ(link.busySeconds(TrafficClass::kBulk), 3.0);
}

TEST(PriorityLink, ImmediatePreemptionAtZeroProgress) {
  Simulator s;
  PriorityLink link(s, 100.0);
  double bulkDone = -1;
  link.submit(TrafficClass::kBulk, 100.0, [&] { bulkDone = s.now(); });
  // Preempt at t=0, before any bit is sent.
  link.submit(TrafficClass::kInvalidationReport, 100.0, [] {});
  s.runAll();
  EXPECT_DOUBLE_EQ(bulkDone, 2.0);
  EXPECT_DOUBLE_EQ(link.deliveredBits(TrafficClass::kBulk), 100.0);
}

}  // namespace
}  // namespace mci::net

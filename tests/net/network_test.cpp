#include "net/network.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace mci::net {
namespace {

TEST(Network, ChannelsHaveConfiguredBandwidths) {
  sim::Simulator s;
  Network net(s, 10000.0, 100.0);
  EXPECT_DOUBLE_EQ(net.downlink().bandwidth(), 10000.0);
  EXPECT_DOUBLE_EQ(net.uplink().bandwidth(), 100.0);
}

TEST(Network, DownlinkUsageDecomposesByClass) {
  sim::Simulator s;
  Network net(s, 1000.0, 1000.0);
  net.downlink().broadcastReport(100.0, [] {});
  net.downlink().sendValidityReport(200.0, [] {});
  net.downlink().sendData(300.0, [] {});
  s.runAll();
  const ChannelUsage u = net.downlinkUsage();
  EXPECT_DOUBLE_EQ(u.irBits, 100.0);
  EXPECT_DOUBLE_EQ(u.controlBits, 200.0);
  EXPECT_DOUBLE_EQ(u.bulkBits, 300.0);
  EXPECT_DOUBLE_EQ(u.totalBits(), 600.0);
  EXPECT_EQ(u.irCount, 1u);
  EXPECT_EQ(u.controlCount, 1u);
  EXPECT_EQ(u.bulkCount, 1u);
  EXPECT_DOUBLE_EQ(u.totalSeconds(), 0.6);
}

TEST(Network, UplinkClassifiesCheckVsRequest) {
  sim::Simulator s;
  Network net(s, 1000.0, 1000.0);
  net.uplink().sendCheck(64.0, [] {});
  net.uplink().sendRequest(4096.0, [] {});
  s.runAll();
  EXPECT_DOUBLE_EQ(net.uplink().checkBits(), 64.0);
  EXPECT_DOUBLE_EQ(net.uplink().requestBits(), 4096.0);
  const ChannelUsage u = net.uplinkUsage();
  EXPECT_DOUBLE_EQ(u.controlBits, 64.0);
  EXPECT_DOUBLE_EQ(u.bulkBits, 4096.0);
  EXPECT_DOUBLE_EQ(u.irBits, 0.0);
}

TEST(Network, ReportPreemptsDataOnDownlink) {
  sim::Simulator s;
  Network net(s, 100.0, 100.0);
  double dataDone = -1, irDone = -1;
  net.downlink().sendData(1000.0, [&] { dataDone = s.now(); });
  s.schedule(2.0, [&] {
    net.downlink().broadcastReport(100.0, [&] { irDone = s.now(); });
  });
  s.runAll();
  EXPECT_DOUBLE_EQ(irDone, 3.0);
  EXPECT_DOUBLE_EQ(dataDone, 11.0);
}

TEST(Network, NoDataChannelsByDefault) {
  sim::Simulator s;
  Network net(s, 1000.0, 1000.0);
  EXPECT_EQ(net.dataChannelCount(), 0u);
  // sendData falls through to the shared downlink.
  net.sendData(100.0, [] {});
  s.runAll();
  EXPECT_DOUBLE_EQ(net.downlinkUsage().bulkBits, 100.0);
  EXPECT_DOUBLE_EQ(net.dataChannelUsage().totalBits(), 0.0);
}

TEST(Network, DedicatedDataChannelsCarryData) {
  sim::Simulator s;
  Network net(s, 1000.0, 1000.0, {500.0, 500.0});
  EXPECT_EQ(net.dataChannelCount(), 2u);
  net.sendData(100.0, [] {});
  s.runAll();
  EXPECT_DOUBLE_EQ(net.downlinkUsage().bulkBits, 0.0);
  EXPECT_DOUBLE_EQ(net.dataChannelUsage().bulkBits, 100.0);
}

TEST(Network, LeastBacklogDispatchBalances) {
  sim::Simulator s;
  Network net(s, 1000.0, 1000.0, {500.0, 500.0});
  for (int i = 0; i < 6; ++i) net.sendData(100.0, [] {});
  // 3 transfers per channel -> both finish at the same time.
  s.runAll();
  EXPECT_DOUBLE_EQ(net.dataChannel(0).deliveredBits(TrafficClass::kBulk),
                   300.0);
  EXPECT_DOUBLE_EQ(net.dataChannel(1).deliveredBits(TrafficClass::kBulk),
                   300.0);
}

TEST(Network, ReportsStayOnBroadcastChannel) {
  sim::Simulator s;
  Network net(s, 1000.0, 1000.0, {500.0});
  double dataDone = -1, irDone = -1;
  net.sendData(500.0, [&] { dataDone = s.now(); });
  net.downlink().broadcastReport(1000.0, [&] { irDone = s.now(); });
  s.runAll();
  // Independent channels: the fat report no longer delays the download.
  EXPECT_DOUBLE_EQ(dataDone, 1.0);
  EXPECT_DOUBLE_EQ(irDone, 1.0);
}

TEST(TrafficClassNames, AreStable) {
  EXPECT_STREQ(trafficClassName(TrafficClass::kInvalidationReport), "ir");
  EXPECT_STREQ(trafficClassName(TrafficClass::kControl), "control");
  EXPECT_STREQ(trafficClassName(TrafficClass::kBulk), "bulk");
}

}  // namespace
}  // namespace mci::net

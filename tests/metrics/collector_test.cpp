#include "metrics/collector.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace mci::metrics {
namespace {

struct Fixture {
  db::Database db{100};
  sim::Simulator sim;
  net::Network net{sim, 1000.0, 1000.0};
  Collector collector{db, /*auditStaleReads=*/false};
};

TEST(Collector, CountsQueryLifecycle) {
  Fixture f;
  f.collector.onCacheAnswer(0, 1, 0, 10.0);
  f.collector.onCacheMiss(0);
  f.collector.onCacheMiss(0);
  f.collector.onQueryCompleted(0, 3.0);
  f.collector.onQueryCompleted(0, 5.0);
  const auto r = f.collector.finalize(100.0, f.net);
  EXPECT_EQ(r.queriesCompleted, 2u);
  EXPECT_EQ(r.cacheHits, 1u);
  EXPECT_EQ(r.cacheMisses, 2u);
  EXPECT_EQ(r.itemsReferenced, 3u);
  EXPECT_DOUBLE_EQ(r.avgQueryLatency, 4.0);
  EXPECT_DOUBLE_EQ(r.maxQueryLatency, 5.0);
  EXPECT_NEAR(r.hitRatio(), 1.0 / 3.0, 1e-12);
}

TEST(Collector, ClassifiesFalseInvalidations) {
  Fixture f;
  f.db.applyUpdate(3, 10.0);  // version 1
  // Invalidating version 1 while current is 1: the copy was still good.
  f.collector.onInvalidate(0, 3, 1, 20.0);
  // Invalidating version 0: genuinely stale.
  f.collector.onInvalidate(0, 3, 0, 20.0);
  const auto r = f.collector.finalize(100.0, f.net);
  EXPECT_EQ(r.invalidations, 2u);
  EXPECT_EQ(r.falseInvalidations, 1u);
}

TEST(Collector, DetectsStaleReads) {
  Fixture f;
  f.db.applyUpdate(5, 10.0);
  f.collector.onCacheAnswer(0, 5, 0, /*validAsOf=*/20.0);  // v0 after update
  EXPECT_EQ(f.collector.staleReads(), 1u);
  // A copy at (or above) the consistency-point version is fine.
  f.collector.onCacheAnswer(0, 5, 1, 20.0);
  EXPECT_EQ(f.collector.staleReads(), 1u);
  // Updates after the consistency point are invisible by design.
  f.db.applyUpdate(5, 30.0);
  f.collector.onCacheAnswer(0, 5, 1, 20.0);
  EXPECT_EQ(f.collector.staleReads(), 1u);
}

TEST(Collector, TracksDropsAndSalvages) {
  Fixture f;
  f.collector.onCacheDrop(0, 10, 5.0);
  f.collector.onCacheDrop(1, 3, 6.0);
  f.collector.onSalvage(0, 7, 8.0);
  const auto r = f.collector.finalize(100.0, f.net);
  EXPECT_EQ(r.cacheDropEvents, 2u);
  EXPECT_EQ(r.entriesDropped, 13u);
  EXPECT_EQ(r.entriesSalvaged, 7u);
}

TEST(Collector, CountsReportKinds) {
  Fixture f;
  f.collector.onReportBuilt(report::ReportKind::kTsWindow);
  f.collector.onReportBuilt(report::ReportKind::kTsWindow);
  f.collector.onReportBuilt(report::ReportKind::kTsExtended);
  f.collector.onReportBuilt(report::ReportKind::kBitSeq);
  f.collector.onReportBuilt(report::ReportKind::kSignature);
  const auto r = f.collector.finalize(100.0, f.net);
  EXPECT_EQ(r.reportsTs, 2u);
  EXPECT_EQ(r.reportsExtended, 1u);
  EXPECT_EQ(r.reportsBs, 1u);
  EXPECT_EQ(r.reportsSig, 1u);
}

TEST(Collector, DisconnectionAccounting) {
  Fixture f;
  f.collector.onDisconnect();
  f.collector.onReconnect(400.0);
  f.collector.onDisconnect();
  f.collector.onReconnect(100.0);
  const auto r = f.collector.finalize(100.0, f.net);
  EXPECT_EQ(r.disconnects, 2u);
  EXPECT_DOUBLE_EQ(r.dozeSeconds, 500.0);
}

TEST(Collector, FinalizeSnapshotsChannels) {
  Fixture f;
  f.net.uplink().sendCheck(64.0, [] {});
  f.net.downlink().broadcastReport(128.0, [] {});
  f.sim.runAll();
  f.collector.onCheckSent();
  f.collector.onQueryCompleted(0, 1.0);
  const auto r = f.collector.finalize(200.0, f.net);
  EXPECT_DOUBLE_EQ(r.uplink.controlBits, 64.0);
  EXPECT_DOUBLE_EQ(r.downlink.irBits, 128.0);
  EXPECT_DOUBLE_EQ(r.uplinkCheckBitsPerQuery(), 64.0);
  EXPECT_EQ(r.checksSent, 1u);
}

TEST(Collector, ClientSpreadSummarizesThePopulation) {
  Fixture f;
  f.collector.setClientCount(3);
  // Client 0: 4 queries, 3 hits / 1 miss. Client 1: 2 queries, all misses.
  // Client 2: idle.
  for (int i = 0; i < 3; ++i) f.collector.onCacheAnswer(0, 1, 0, 0.0);
  f.collector.onCacheMiss(0);
  for (int i = 0; i < 4; ++i) f.collector.onQueryCompleted(0, 1.0);
  f.collector.onCacheMiss(1);
  f.collector.onCacheMiss(1);
  f.collector.onQueryCompleted(1, 1.0);
  f.collector.onQueryCompleted(1, 1.0);
  const auto r = f.collector.finalize(100.0, f.net);
  EXPECT_DOUBLE_EQ(r.clients.minQueries, 0.0);
  EXPECT_DOUBLE_EQ(r.clients.maxQueries, 4.0);
  EXPECT_DOUBLE_EQ(r.clients.meanQueries, 2.0);
  // Jain: (6)^2 / (3 * (16+4+0)) = 36/60 = 0.6
  EXPECT_NEAR(r.clients.fairness, 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(r.clients.minHitRatio, 0.0);
  EXPECT_DOUBLE_EQ(r.clients.maxHitRatio, 0.75);
}

TEST(Collector, RadioAccountingFeedsEnergyModel) {
  Fixture f;
  f.collector.onClientTx(1000.0);
  f.collector.onClientRx(50000.0);
  f.collector.onQueryCompleted(0, 1.0);
  f.collector.onQueryCompleted(1, 1.0);
  const auto r = f.collector.finalize(100.0, f.net);
  EXPECT_DOUBLE_EQ(r.clientTxBits, 1000.0);
  EXPECT_DOUBLE_EQ(r.clientRxBits, 50000.0);
  // tx at 1e-5 J/bit + rx at 1e-6 J/bit.
  EXPECT_NEAR(r.radioEnergyJoules(), 1000 * 1e-5 + 50000 * 1e-6, 1e-12);
  EXPECT_NEAR(r.energyPerQueryJoules(), r.radioEnergyJoules() / 2.0, 1e-12);
  // Custom constants.
  EXPECT_NEAR(r.radioEnergyJoules(2.0, 1.0), 2000.0 + 50000.0, 1e-9);
}

TEST(SimResult, DerivedMetricsHandleZeroQueries) {
  SimResult r;
  EXPECT_DOUBLE_EQ(r.uplinkCheckBitsPerQuery(), 0.0);
  EXPECT_DOUBLE_EQ(r.uplinkTotalBitsPerQuery(), 0.0);
  EXPECT_DOUBLE_EQ(r.hitRatio(), 0.0);
  EXPECT_DOUBLE_EQ(r.downlinkIrFraction(), 0.0);
  EXPECT_DOUBLE_EQ(r.throughput(), 0.0);
  EXPECT_DOUBLE_EQ(r.energyPerQueryJoules(), 0.0);
}

TEST(SimResult, MergeSumsCountersAndWeightsLatenciesByQueries) {
  SimResult a;
  a.simTime = 100.0;
  a.queriesCompleted = 300;
  a.cacheHits = 200;
  a.cacheMisses = 100;
  a.avgQueryLatency = 2.0;
  a.maxQueryLatency = 9.0;
  a.clientRxBits = 1000.0;
  a.downlink.irBits = 64;
  a.clients.fairness = 1.0;

  SimResult b;
  b.simTime = 90.0;
  b.queriesCompleted = 100;
  b.cacheHits = 20;
  b.cacheMisses = 80;
  b.staleReads = 1;
  b.avgQueryLatency = 6.0;
  b.maxQueryLatency = 4.0;
  b.clientRxBits = 500.0;
  b.downlink.irBits = 36;
  b.clients.fairness = 0.5;

  const SimResult m = mergeResults({a, b});
  EXPECT_DOUBLE_EQ(m.simTime, 100.0);  // parts ran concurrently: max, not sum
  EXPECT_EQ(m.queriesCompleted, 400u);
  EXPECT_EQ(m.cacheHits, 220u);
  EXPECT_EQ(m.cacheMisses, 180u);
  EXPECT_EQ(m.staleReads, 1u);
  EXPECT_DOUBLE_EQ(m.hitRatio(), 220.0 / 400.0);
  // avg = (300*2 + 100*6) / 400; max = max of maxes.
  EXPECT_DOUBLE_EQ(m.avgQueryLatency, 3.0);
  EXPECT_DOUBLE_EQ(m.maxQueryLatency, 9.0);
  EXPECT_DOUBLE_EQ(m.clientRxBits, 1500.0);
  EXPECT_DOUBLE_EQ(m.downlink.irBits, 100.0);
  EXPECT_DOUBLE_EQ(m.clients.fairness, 0.75 * 1.0 + 0.25 * 0.5);
}

TEST(SimResult, MergeOfNothingIsTheEmptyResult) {
  const SimResult m = mergeResults({});
  EXPECT_EQ(m.queriesCompleted, 0u);
  EXPECT_DOUBLE_EQ(m.hitRatio(), 0.0);
  EXPECT_DOUBLE_EQ(m.clients.fairness, 1.0);
}

TEST(SimResult, MergeWithZeroQueriesEverywhereWeightsEvenly) {
  SimResult a;
  a.avgQueryLatency = 2.0;
  SimResult b;
  b.avgQueryLatency = 4.0;
  const SimResult m = mergeResults({a, b});
  EXPECT_DOUBLE_EQ(m.avgQueryLatency, 3.0);
}

}  // namespace
}  // namespace mci::metrics

#include "metrics/json.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace mci::metrics {
namespace {

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, SimResultRoundTripsKeyFields) {
  SimResult r;
  r.simTime = 1000;
  r.queriesCompleted = 42;
  r.cacheHits = 10;
  r.cacheMisses = 32;
  r.itemsReferenced = 42;
  r.uplink.controlBits = 84;
  const std::string j = toJson(r);
  EXPECT_NE(j.find("\"queriesCompleted\":42"), std::string::npos);
  EXPECT_NE(j.find("\"throughput\":42"), std::string::npos);
  EXPECT_NE(j.find("\"uplinkCheckBitsPerQuery\":2"), std::string::npos);
  EXPECT_NE(j.find("\"staleReads\":0"), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  // Balanced braces/brackets (cheap well-formedness probe).
  int depth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const char c = j[i];
    if (c == '"' && (i == 0 || j[i - 1] != '\\')) inString = !inString;
    if (inString) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(inString);
}

TEST(Json, FigureDataSchema) {
  FigureData d;
  d.title = "Figure \"5\"";
  d.xLabel = "N";
  d.yLabel = "queries";
  d.xs = {1, 2};
  d.series = {{"AAW", {3.5, 4.0}, {}}, {"BS", {1.0, 2.0}, {0.1, 0.2}}};
  const std::string j = toJson(d);
  EXPECT_NE(j.find("\"title\":\"Figure \\\"5\\\"\""), std::string::npos);
  EXPECT_NE(j.find("\"xs\":[1,2]"), std::string::npos);
  EXPECT_NE(j.find("\"ys\":[3.5,4]"), std::string::npos);
  EXPECT_NE(j.find("\"sds\":[0.1,0.2]"), std::string::npos);
  // The first series has no replication spread and thus no sds key before
  // its closing brace.
  const auto aaw = j.find("\"AAW\"");
  const auto close = j.find('}', aaw);
  EXPECT_EQ(j.substr(aaw, close - aaw).find("sds"), std::string::npos);
}

TEST(Json, RealRunSerializes) {
  core::SimConfig cfg;
  cfg.simTime = 1500;
  cfg.numClients = 10;
  cfg.dbSize = 200;
  const auto r = core::Simulation(cfg).run();
  const std::string j = toJson(r);
  EXPECT_NE(j.find("\"downlink\""), std::string::npos);
  EXPECT_NE(j.find("\"fairness\""), std::string::npos);
  EXPECT_EQ(j.find("inf"), std::string::npos);
  EXPECT_EQ(j.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace mci::metrics

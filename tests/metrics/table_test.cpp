#include "metrics/table.hpp"

#include <gtest/gtest.h>

#include "metrics/series.hpp"

namespace mci::metrics {
namespace {

TEST(Table, FormatsAlignedColumns) {
  Table t({"x", "value"});
  t.addRow({"1", "10"});
  t.addRow({"1000", "2"});
  const std::string out = t.str();
  EXPECT_NE(out.find("   x  value"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  // Each line ends without trailing spaces beyond cells; header rule exists.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.addRow({"1"});
  EXPECT_NO_THROW((void)t.str());
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 0), "3");
  EXPECT_EQ(Table::fmtInt(12345.6), "12346");
}

TEST(FigureData, ToTableContainsEverything) {
  FigureData d;
  d.title = "Figure 5. UNIFORM Workload.";
  d.subtitle = "p=0.1";
  d.xLabel = "Database Size";
  d.yLabel = "No. of Queries Answered";
  d.xs = {1000, 2000};
  d.series = {{"AAW", {10.5, 11.5}, {}}, {"BS", {9.0, 8.0}, {}}};
  const std::string out = d.toTable(1);
  EXPECT_NE(out.find("Figure 5"), std::string::npos);
  EXPECT_NE(out.find("p=0.1"), std::string::npos);
  EXPECT_NE(out.find("Database Size"), std::string::npos);
  EXPECT_NE(out.find("AAW"), std::string::npos);
  EXPECT_NE(out.find("10.5"), std::string::npos);
  EXPECT_NE(out.find("2000"), std::string::npos);
}

TEST(FigureData, ToCsvIsMachineReadable) {
  FigureData d;
  d.xLabel = "x";
  d.xs = {1, 2};
  d.series = {{"a", {3, 4}, {}}, {"b", {5, 6}, {}}};
  EXPECT_EQ(d.toCsv(), "x,a,b\n1,3,5\n2,4,6\n");
}

TEST(FigureData, EmptySeriesRenders) {
  FigureData d;
  d.xLabel = "x";
  EXPECT_NO_THROW((void)d.toTable());
  EXPECT_EQ(d.toCsv(), "x\n");
}

}  // namespace
}  // namespace mci::metrics

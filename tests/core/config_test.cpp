#include "core/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mci::core {
namespace {

TEST(SimConfig, Table1DefaultsValidate) {
  SimConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  // Spot-check the Table 1 values.
  EXPECT_DOUBLE_EQ(cfg.simTime, 100000.0);
  EXPECT_EQ(cfg.numClients, 100u);
  EXPECT_DOUBLE_EQ(cfg.broadcastPeriod, 20.0);
  EXPECT_DOUBLE_EQ(cfg.downlinkBps, 10000.0);
  EXPECT_EQ(cfg.dataItemBytes, 8192u);
  EXPECT_EQ(cfg.controlMessageBytes, 512u);
  EXPECT_DOUBLE_EQ(cfg.meanThinkTime, 100.0);
  EXPECT_DOUBLE_EQ(cfg.meanUpdateInterarrival, 100.0);
  EXPECT_DOUBLE_EQ(cfg.meanItemsPerUpdate, 5.0);
  EXPECT_EQ(cfg.windowIntervals, 10);
}

TEST(SimConfig, CacheCapacityIsBufferFraction) {
  SimConfig cfg;
  cfg.dbSize = 10000;
  cfg.clientBufferFrac = 0.02;
  EXPECT_EQ(cfg.cacheCapacity(), 200u);
  cfg.clientBufferFrac = 0.01;
  EXPECT_EQ(cfg.cacheCapacity(), 100u);
  cfg.dbSize = 10;
  cfg.clientBufferFrac = 0.01;
  EXPECT_EQ(cfg.cacheCapacity(), 1u);  // never zero
}

TEST(SimConfig, SizeModelMirrorsConfig) {
  SimConfig cfg;
  cfg.dbSize = 4096;
  cfg.numClients = 64;
  cfg.timestampBits = 48;
  const auto m = cfg.sizeModel();
  EXPECT_EQ(m.numItems, 4096u);
  EXPECT_EQ(m.numClients, 64u);
  EXPECT_EQ(m.timestampBits, 48);
  EXPECT_EQ(m.dataItemBytes, 8192u);
}

TEST(SimConfig, RejectsBadValues) {
  auto expectThrow = [](auto mutate) {
    SimConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  expectThrow([](SimConfig& c) { c.simTime = 0; });
  expectThrow([](SimConfig& c) { c.numClients = 0; });
  expectThrow([](SimConfig& c) { c.dbSize = 1; });
  expectThrow([](SimConfig& c) { c.broadcastPeriod = -1; });
  expectThrow([](SimConfig& c) { c.downlinkBps = 0; });
  expectThrow([](SimConfig& c) { c.uplinkBps = 0; });
  expectThrow([](SimConfig& c) { c.clientBufferFrac = 0; });
  expectThrow([](SimConfig& c) { c.clientBufferFrac = 1.5; });
  expectThrow([](SimConfig& c) { c.meanItemsPerQuery = 0.5; });
  expectThrow([](SimConfig& c) { c.disconnectProb = -0.1; });
  expectThrow([](SimConfig& c) { c.disconnectProb = 1.1; });
  expectThrow([](SimConfig& c) { c.windowIntervals = 0; });
  expectThrow([](SimConfig& c) { c.timestampBits = 0; });
  expectThrow([](SimConfig& c) {
    c.workload = WorkloadKind::kHotCold;
    c.hotQuery = {50, 50, 0.8};
  });
  expectThrow([](SimConfig& c) {
    c.workload = WorkloadKind::kHotCold;
    c.dbSize = 50;
    c.hotQuery = {0, 100, 0.8};
  });
  expectThrow([](SimConfig& c) {
    c.scheme = schemes::SchemeKind::kSig;
    c.sigSubsets = 0;
  });
}

TEST(SimConfig, DescribeMentionsKeyParameters) {
  SimConfig cfg;
  cfg.scheme = schemes::SchemeKind::kAfw;
  cfg.workload = WorkloadKind::kHotCold;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("AFW"), std::string::npos);
  EXPECT_NE(d.find("HOTCOLD"), std::string::npos);
  EXPECT_NE(d.find("N=10000"), std::string::npos);
}

TEST(WorkloadKind, Names) {
  EXPECT_STREQ(workloadName(WorkloadKind::kUniform), "UNIFORM");
  EXPECT_STREQ(workloadName(WorkloadKind::kHotCold), "HOTCOLD");
}

}  // namespace
}  // namespace mci::core

#include <gtest/gtest.h>

#include "core/aaw_scheme.hpp"
#include "core/afw_scheme.hpp"
#include "schemes/scheme_test_util.hpp"

// The scheme_test_util header lives in tests/schemes; include via relative
// path from this directory.

namespace mci::core {
namespace {

using schemes::testutil::ClientHarness;

struct AdaptiveFixture : ::testing::Test {
  db::UpdateHistory hist{1000};
  ClientHarness h{1000, 32};
  AfwServerScheme afw{hist, h.sizes, /*L=*/20.0, /*w=*/10};
  AawServerScheme aaw{hist, h.sizes, /*L=*/20.0, /*w=*/10};
  AdaptiveClientScheme client;

  schemes::CheckMessage tlbMsg(double tlb) {
    schemes::CheckMessage m;
    m.client = h.ctx.id();
    m.tlb = tlb;
    m.sizeBits = h.sizes.tlbMessageBits();
    return m;
  }
};

// ---------------- server halves ----------------

TEST_F(AdaptiveFixture, DefaultReportIsTsWindow) {
  hist.record(1, 490.0);
  const auto r = afw.buildReport(500.0);
  EXPECT_EQ(r->kind, report::ReportKind::kTsWindow);
  EXPECT_EQ(afw.decisions().tsReports, 1u);
}

TEST_F(AdaptiveFixture, AfwAnswersSalvageableTlbWithBs) {
  hist.record(1, 100.0);
  EXPECT_FALSE(afw.onCheckMessage(tlbMsg(50.0), 480.0).has_value());
  const auto r = afw.buildReport(500.0);
  EXPECT_EQ(r->kind, report::ReportKind::kBitSeq);
  EXPECT_EQ(afw.decisions().bsReports, 1u);
  EXPECT_EQ(afw.decisions().tlbsReceived, 1u);
  // The pending list is consumed: the next report is a window again.
  EXPECT_EQ(afw.buildReport(520.0)->kind, report::ReportKind::kTsWindow);
}

TEST_F(AdaptiveFixture, TlbInsideWindowDoesNotTriggerHelp) {
  hist.record(1, 100.0);
  afw.onCheckMessage(tlbMsg(495.0), 498.0);  // within (500-200, 500]
  EXPECT_EQ(afw.buildReport(500.0)->kind, report::ReportKind::kTsWindow);
}

TEST_F(AdaptiveFixture, UnsalvageableTlbIsDeclined) {
  // Update more than half the database after t=10: TS(Bn) > 10.
  for (db::ItemId i = 0; i < 600; ++i) hist.record(i, 20.0 + i * 0.1);
  afw.onCheckMessage(tlbMsg(10.0), 480.0);
  const auto r = afw.buildReport(500.0);
  EXPECT_EQ(r->kind, report::ReportKind::kTsWindow);
  EXPECT_EQ(afw.decisions().tlbsDeclined, 1u);
}

TEST_F(AdaptiveFixture, AawPrefersSmallExtendedWindow) {
  // Few updates since the stale Tlb: IR(w') is far smaller than IR(BS).
  hist.record(1, 100.0);
  hist.record(2, 200.0);
  aaw.onCheckMessage(tlbMsg(50.0), 480.0);
  const auto r = aaw.buildReport(500.0);
  ASSERT_EQ(r->kind, report::ReportKind::kTsExtended);
  const auto& ts = static_cast<const report::TsReport&>(*r);
  EXPECT_DOUBLE_EQ(ts.dummyTlb(), 50.0);
  EXPECT_TRUE(ts.covers(50.0));
  EXPECT_EQ(ts.entries().size(), 2u);
  EXPECT_EQ(aaw.decisions().extendedReports, 1u);
}

TEST_F(AdaptiveFixture, AawFallsBackToBsWhenExtensionIsHuge) {
  // So many updates since the old Tlb that listing them costs more than
  // the whole bit-sequence structure (2N + ...: ~2048 bits at N=1000;
  // each record is 10+32 bits, so ~50 records tie it).
  for (int i = 0; i < 200; ++i) {
    hist.record(static_cast<db::ItemId>(i), 100.0 + i);
  }
  aaw.onCheckMessage(tlbMsg(50.0), 480.0);
  const auto r = aaw.buildReport(500.0);
  EXPECT_EQ(r->kind, report::ReportKind::kBitSeq);
  EXPECT_EQ(aaw.decisions().bsReports, 1u);
}

TEST_F(AdaptiveFixture, AawUsesOldestSalvageableTlb) {
  hist.record(1, 100.0);
  aaw.onCheckMessage(tlbMsg(80.0), 470.0);
  aaw.onCheckMessage(tlbMsg(40.0), 480.0);
  const auto r = aaw.buildReport(500.0);
  ASSERT_EQ(r->kind, report::ReportKind::kTsExtended);
  EXPECT_DOUBLE_EQ(static_cast<const report::TsReport&>(*r).dummyTlb(), 40.0);
}

// ---------------- client half ----------------

TEST_F(AdaptiveFixture, CoveredClientProcessesNormally) {
  h.cacheItem(1, 100.0);
  h.ctx.setLastHeard(480.0);
  hist.record(1, 490.0);
  client.onReport(*afw.buildReport(500.0), h.ctx);
  EXPECT_FALSE(h.ctx.cache().contains(1));
  EXPECT_EQ(h.ctx.cache().suspectCount(), 0u);
}

TEST_F(AdaptiveFixture, GapSendsTlbOnce) {
  h.cacheItem(1, 100.0);
  h.ctx.setLastHeard(120.0);
  const auto out1 = client.onReport(*afw.buildReport(500.0), h.ctx);
  ASSERT_TRUE(out1.sendCheck);
  EXPECT_TRUE(out1.check.entries.empty());  // Tlb only — a few dozen bits
  EXPECT_DOUBLE_EQ(out1.check.tlb, 120.0);
  EXPECT_DOUBLE_EQ(out1.check.sizeBits, h.sizes.tlbMessageBits());
  EXPECT_TRUE(h.ctx.salvagePending());
  // Feedback still in flight: no resend on the next uncovered report.
  const auto out2 = client.onReport(*afw.buildReport(520.0), h.ctx);
  EXPECT_FALSE(out2.sendCheck);
  EXPECT_EQ(h.ctx.cache().suspectCount(), 1u);
}

TEST_F(AdaptiveFixture, HelpingBsReportSalvagesSuspects) {
  h.cacheItem(1, 100.0);
  h.cacheItem(2, 100.0);
  h.ctx.setLastHeard(120.0);
  hist.record(1, 300.0);  // item 1 stale, item 2 clean

  client.onReport(*afw.buildReport(500.0), h.ctx);  // gap -> Tlb sent
  afw.onCheckMessage(tlbMsg(120.0), 505.0);
  h.ctx.setCheckDeliveredAt(505.0);
  const auto helping = afw.buildReport(520.0);
  ASSERT_EQ(helping->kind, report::ReportKind::kBitSeq);
  client.onReport(*helping, h.ctx);

  EXPECT_FALSE(h.ctx.cache().contains(1));
  ASSERT_TRUE(h.ctx.cache().contains(2));
  EXPECT_FALSE(h.ctx.cache().find(2)->suspect);
  EXPECT_FALSE(h.ctx.salvagePending());
  EXPECT_EQ(h.sink.salvagedEntries, 1u);
}

TEST_F(AdaptiveFixture, ExtendedReportSalvagesViaDummyRecord) {
  h.cacheItem(1, 100.0);
  h.cacheItem(2, 100.0);
  h.ctx.setLastHeard(120.0);
  hist.record(1, 300.0);

  client.onReport(*aaw.buildReport(500.0), h.ctx);
  aaw.onCheckMessage(tlbMsg(120.0), 505.0);
  h.ctx.setCheckDeliveredAt(505.0);
  const auto helping = aaw.buildReport(520.0);
  ASSERT_EQ(helping->kind, report::ReportKind::kTsExtended);
  client.onReport(*helping, h.ctx);

  EXPECT_FALSE(h.ctx.cache().contains(1));
  ASSERT_TRUE(h.ctx.cache().contains(2));
  EXPECT_FALSE(h.ctx.cache().find(2)->suspect);
  EXPECT_FALSE(h.ctx.salvagePending());
}

TEST_F(AdaptiveFixture, DeclineDropsSuspects) {
  // More than half the DB updated: the client's Tlb is hopeless.
  for (db::ItemId i = 0; i < 600; ++i) hist.record(i, 20.0 + i * 0.1);
  h.cacheItem(700, 10.0);
  h.ctx.setLastHeard(10.0);

  const auto out = client.onReport(*afw.buildReport(500.0), h.ctx);
  ASSERT_TRUE(out.sendCheck);
  afw.onCheckMessage(out.check, 505.0);
  h.ctx.setCheckDeliveredAt(505.0);
  const auto r2 = afw.buildReport(520.0);  // server declines: plain window
  ASSERT_EQ(r2->kind, report::ReportKind::kTsWindow);
  client.onReport(*r2, h.ctx);
  EXPECT_EQ(h.ctx.cache().size(), 0u);  // suspects dropped
  EXPECT_FALSE(h.ctx.salvagePending());
}

TEST_F(AdaptiveFixture, ReportBuiltBeforeDeliveryDoesNotDrop) {
  h.cacheItem(1, 100.0);
  h.ctx.setLastHeard(120.0);
  const auto out = client.onReport(*afw.buildReport(500.0), h.ctx);
  ASSERT_TRUE(out.sendCheck);
  // The next report (520) was built before our Tlb arrived (525): the
  // client must keep waiting, not give up.
  const auto r2 = afw.buildReport(520.0);
  h.ctx.setCheckDeliveredAt(525.0);
  client.onReport(*r2, h.ctx);
  EXPECT_EQ(h.ctx.cache().suspectCount(), 1u);
  EXPECT_TRUE(h.ctx.salvagePending());
}

TEST_F(AdaptiveFixture, PiggybackOnAnotherClientsBs) {
  // A BS report triggered by someone else salvages this client before it
  // even sends its own Tlb.
  h.cacheItem(2, 100.0);
  h.ctx.setLastHeard(120.0);
  afw.onCheckMessage(tlbMsg(100.0), 490.0);  // some other client's feedback
  const auto r = afw.buildReport(500.0);
  ASSERT_EQ(r->kind, report::ReportKind::kBitSeq);
  const auto out = client.onReport(*r, h.ctx);
  EXPECT_FALSE(out.sendCheck);  // never needed the uplink
  EXPECT_TRUE(h.ctx.cache().contains(2));
  EXPECT_EQ(h.ctx.cache().suspectCount(), 0u);
}

TEST_F(AdaptiveFixture, EmptyCacheGapStaysQuiet) {
  h.ctx.setLastHeard(120.0);
  const auto out = client.onReport(*afw.buildReport(500.0), h.ctx);
  EXPECT_FALSE(out.sendCheck);
  EXPECT_FALSE(h.ctx.salvagePending());
}

TEST_F(AdaptiveFixture, SuspectsStillObeyListedRecords) {
  // While waiting for help, explicit window records keep invalidating.
  h.cacheItem(1, 100.0);
  h.cacheItem(2, 100.0);
  h.ctx.setLastHeard(120.0);
  client.onReport(*afw.buildReport(500.0), h.ctx);
  hist.record(1, 510.0);
  client.onReport(*afw.buildReport(520.0), h.ctx);
  EXPECT_FALSE(h.ctx.cache().contains(1));
  EXPECT_EQ(h.ctx.cache().suspectCount(), 1u);
}

}  // namespace
}  // namespace mci::core

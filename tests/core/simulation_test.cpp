#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mci::core {
namespace {

SimConfig smallConfig(schemes::SchemeKind scheme) {
  SimConfig cfg;
  cfg.scheme = scheme;
  cfg.simTime = 5000.0;
  cfg.numClients = 20;
  cfg.dbSize = 500;
  cfg.clientBufferFrac = 0.02;
  cfg.seed = 11;
  return cfg;
}

class AllSchemesTest
    : public ::testing::TestWithParam<schemes::SchemeKind> {};

TEST_P(AllSchemesTest, RunsCleanlyAndAnswersQueries) {
  Simulation sim(smallConfig(GetParam()));
  const metrics::SimResult r = sim.run();
  EXPECT_GT(r.queriesCompleted, 0u);
  EXPECT_EQ(r.staleReads, 0u);
  EXPECT_EQ(r.cacheHits + r.cacheMisses, r.itemsReferenced);
  EXPECT_GT(r.downlink.irCount, 0u);
  EXPECT_DOUBLE_EQ(r.simTime, 5000.0);
  EXPECT_GE(r.avgQueryLatency, 0.0);
}

TEST_P(AllSchemesTest, DeterministicForSameSeed) {
  const auto cfg = smallConfig(GetParam());
  const auto a = Simulation(cfg).run();
  const auto b = Simulation(cfg).run();
  EXPECT_EQ(a.queriesCompleted, b.queriesCompleted);
  EXPECT_EQ(a.cacheHits, b.cacheHits);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_DOUBLE_EQ(a.uplink.controlBits, b.uplink.controlBits);
  EXPECT_DOUBLE_EQ(a.downlink.totalBits(), b.downlink.totalBits());
}

TEST_P(AllSchemesTest, DifferentSeedsDiffer) {
  auto cfg = smallConfig(GetParam());
  const auto a = Simulation(cfg).run();
  cfg.seed = 12;
  const auto b = Simulation(cfg).run();
  EXPECT_NE(a.queriesCompleted, b.queriesCompleted);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemesTest, ::testing::ValuesIn(schemes::kAllSchemes),
    [](const ::testing::TestParamInfo<schemes::SchemeKind>& paramInfo) {
      std::string name = schemes::schemeName(paramInfo.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Simulation, BsNeverUsesTheUplinkForChecks) {
  Simulation sim(smallConfig(schemes::SchemeKind::kBs));
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.uplink.controlBits, 0.0);
  EXPECT_EQ(r.checksSent, 0u);
  // Every broadcast is a BS report (the one built at the horizon may not
  // finish delivering).
  EXPECT_GE(r.reportsBs, r.downlink.irCount);
  EXPECT_LE(r.reportsBs, r.downlink.irCount + 1);
}

TEST(Simulation, TsCheckingSpendsTheMostUplink) {
  const auto bs = Simulation(smallConfig(schemes::SchemeKind::kBs)).run();
  const auto aaw = Simulation(smallConfig(schemes::SchemeKind::kAaw)).run();
  const auto check =
      Simulation(smallConfig(schemes::SchemeKind::kTsChecking)).run();
  EXPECT_GT(check.uplinkCheckBitsPerQuery(), aaw.uplinkCheckBitsPerQuery());
  EXPECT_GT(aaw.uplinkCheckBitsPerQuery(), bs.uplinkCheckBitsPerQuery());
}

TEST(Simulation, AdaptiveServersMixReportKinds) {
  const auto afw = Simulation(smallConfig(schemes::SchemeKind::kAfw)).run();
  EXPECT_GT(afw.reportsTs, 0u);
  EXPECT_GT(afw.reportsBs, 0u);  // someone needed help in 5000 s
  EXPECT_EQ(afw.reportsExtended, 0u);

  const auto aaw = Simulation(smallConfig(schemes::SchemeKind::kAaw)).run();
  EXPECT_GT(aaw.reportsTs, 0u);
  EXPECT_GT(aaw.reportsExtended + aaw.reportsBs, 0u);
}

TEST(Simulation, ReportsAreBroadcastEveryPeriod) {
  auto cfg = smallConfig(schemes::SchemeKind::kTs);
  cfg.simTime = 1000.0;
  Simulation sim(cfg);
  sim.runUntil(1000.0);
  // L = 20: reports at 20, 40, ..., 1000 -> 50 built.
  EXPECT_EQ(sim.server().reportsBroadcast(), 50u);
}

TEST(Simulation, NoDisconnectionsWhenProbabilityIsZero) {
  auto cfg = smallConfig(schemes::SchemeKind::kAaw);
  cfg.disconnectProb = 0.0;
  const auto r = Simulation(cfg).run();
  EXPECT_EQ(r.disconnects, 0u);
  EXPECT_DOUBLE_EQ(r.dozeSeconds, 0.0);
  // Nobody ever misses a report, so nobody asks for help.
  EXPECT_EQ(r.checksSent, 0u);
  EXPECT_EQ(r.reportsBs, 0u);
}

TEST(Simulation, DisconnectionsHappenAndAreAccounted) {
  auto cfg = smallConfig(schemes::SchemeKind::kAaw);
  cfg.disconnectProb = 0.5;
  const auto r = Simulation(cfg).run();
  EXPECT_GT(r.disconnects, 0u);
  EXPECT_GT(r.dozeSeconds, 0.0);
}

TEST(Simulation, PostQueryDisconnectModelWorks) {
  auto cfg = smallConfig(schemes::SchemeKind::kAaw);
  cfg.disconnectModel = workload::DisconnectModel::kPostQuery;
  cfg.disconnectProb = 0.3;
  const auto r = Simulation(cfg).run();
  EXPECT_GT(r.disconnects, 0u);
  EXPECT_EQ(r.staleReads, 0u);
  EXPECT_GT(r.queriesCompleted, 0u);
}

TEST(Simulation, HotColdWorkloadGetsHigherHitRatioThanUniform) {
  auto cfg = smallConfig(schemes::SchemeKind::kAaw);
  cfg.simTime = 20000.0;
  cfg.dbSize = 2000;
  cfg.hotQuery = {0, 100, 0.8};
  cfg.workload = WorkloadKind::kUniform;
  const auto uniform = Simulation(cfg).run();
  cfg.workload = WorkloadKind::kHotCold;
  const auto hotcold = Simulation(cfg).run();
  EXPECT_GT(hotcold.hitRatio(), uniform.hitRatio() + 0.05);
}

TEST(Simulation, MultiItemQueriesAreSupported) {
  auto cfg = smallConfig(schemes::SchemeKind::kAaw);
  cfg.meanItemsPerQuery = 10.0;
  const auto r = Simulation(cfg).run();
  EXPECT_EQ(r.staleReads, 0u);
  EXPECT_GT(r.itemsReferenced, 5 * r.queriesCompleted);
}

TEST(Simulation, SnapshotTracksPartialProgress) {
  Simulation sim(smallConfig(schemes::SchemeKind::kAaw));
  sim.runUntil(1000.0);
  const auto early = sim.snapshot();
  sim.runUntil(5000.0);
  const auto late = sim.snapshot();
  EXPECT_LT(early.queriesCompleted, late.queriesCompleted);
}

TEST(Simulation, UpdatesPropagateIntoTheDatabase) {
  Simulation sim(smallConfig(schemes::SchemeKind::kTs));
  sim.runUntil(5000.0);
  // ~50 transactions * ~5 items each.
  EXPECT_GT(sim.database().totalUpdates(), 100u);
  EXPECT_GT(sim.history().distinctUpdated(), 50u);
}

TEST(Simulation, SigSchemeRunsWithCustomParameters) {
  auto cfg = smallConfig(schemes::SchemeKind::kSig);
  cfg.sigSubsets = 64;
  cfg.sigPerItem = 3;
  const auto r = Simulation(cfg).run();
  EXPECT_EQ(r.staleReads, 0u);
  EXPECT_GE(r.reportsSig, r.downlink.irCount);
  EXPECT_LE(r.reportsSig, r.downlink.irCount + 1);
  EXPECT_DOUBLE_EQ(r.uplink.controlBits, 0.0);  // SIG is pure broadcast
}

TEST(Simulation, DedicatedDataChannelsRelieveTheBroadcastChannel) {
  auto cfg = smallConfig(schemes::SchemeKind::kBs);
  cfg.dbSize = 2000;  // fat BS reports
  cfg.simTime = 10000.0;
  const auto shared = Simulation(cfg).run();
  cfg.dataChannelBps = {cfg.downlinkBps};  // extra dedicated capacity
  const auto split = Simulation(cfg).run();
  EXPECT_EQ(split.staleReads, 0u);
  // Data moved off the broadcast channel entirely...
  EXPECT_DOUBLE_EQ(split.downlink.bulkBits, 0.0);
  EXPECT_GT(split.dataChannels.bulkBits, 0.0);
  // ...and the added capacity buys throughput.
  EXPECT_GT(split.queriesCompleted, shared.queriesCompleted);
}

TEST(Simulation, SingleChannelHasNoDataChannelUsage) {
  const auto r = Simulation(smallConfig(schemes::SchemeKind::kAaw)).run();
  EXPECT_DOUBLE_EQ(r.dataChannels.totalBits(), 0.0);
}

TEST(Simulation, RadioBitsAreAccounted) {
  const auto r = Simulation(smallConfig(schemes::SchemeKind::kAaw)).run();
  // Clients heard reports (rx) and sent query requests (tx).
  EXPECT_GT(r.clientRxBits, 0.0);
  EXPECT_GT(r.clientTxBits, 0.0);
  // Everything clients transmitted crossed the uplink (delivered bits can
  // lag the in-flight tail at the horizon).
  EXPECT_GE(r.clientTxBits + 1e-9, r.uplink.totalBits());
  EXPECT_GT(r.energyPerQueryJoules(), 0.0);
}

TEST(Simulation, HeterogeneityWidensTheClientSpread) {
  auto cfg = smallConfig(schemes::SchemeKind::kAaw);
  cfg.simTime = 20000.0;
  cfg.disconnectProb = 0.0;  // isolate the think-time spread
  const auto uniform = Simulation(cfg).run();
  cfg.clientHeterogeneity = 0.9;
  const auto varied = Simulation(cfg).run();
  EXPECT_EQ(varied.staleReads, 0u);
  // Fairness over per-client query counts degrades with heterogeneity.
  EXPECT_LT(varied.clients.fairness, uniform.clients.fairness);
  const double spreadU = uniform.clients.maxQueries - uniform.clients.minQueries;
  const double spreadV = varied.clients.maxQueries - varied.clients.minQueries;
  EXPECT_GT(spreadV, spreadU);
}

TEST(Simulation, HeterogeneityValidation) {
  auto cfg = smallConfig(schemes::SchemeKind::kAaw);
  cfg.clientHeterogeneity = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Simulation, WarmupExcludesTheColdStartTransient) {
  auto cfg = smallConfig(schemes::SchemeKind::kAaw);
  cfg.simTime = 6000.0;
  const auto cold = Simulation(cfg).run();
  cfg.warmupTime = 3000.0;
  const auto warm = Simulation(cfg).run();
  // Measured horizon halves; counts drop accordingly.
  EXPECT_DOUBLE_EQ(warm.simTime, 3000.0);
  EXPECT_LT(warm.queriesCompleted, cold.queriesCompleted);
  EXPECT_GT(warm.queriesCompleted, 0u);
  // Channel usage was baselined: the measured IR count is roughly half.
  EXPECT_LT(warm.downlink.irCount, cold.downlink.irCount);
  EXPECT_NEAR(static_cast<double>(warm.downlink.irCount),
              static_cast<double>(cold.downlink.irCount) / 2.0, 3.0);
  // The warm cache serves a hit ratio at least as good as the cold run.
  EXPECT_GE(warm.hitRatio() + 0.02, cold.hitRatio());
  EXPECT_EQ(warm.staleReads, 0u);
}

TEST(Simulation, WarmupValidation) {
  auto cfg = smallConfig(schemes::SchemeKind::kAaw);
  cfg.warmupTime = cfg.simTime;  // must be strictly inside the horizon
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Simulation, LatencyPercentilesAreOrdered) {
  const auto r = Simulation(smallConfig(schemes::SchemeKind::kAaw)).run();
  EXPECT_GT(r.p50QueryLatency, 0.0);
  EXPECT_LE(r.p50QueryLatency, r.p95QueryLatency);
  EXPECT_LE(r.p95QueryLatency, r.maxQueryLatency + 10.0);  // histogram bin slack
}

TEST(Simulation, ClientSpreadIsPopulated) {
  const auto r = Simulation(smallConfig(schemes::SchemeKind::kAaw)).run();
  EXPECT_GT(r.clients.meanQueries, 0.0);
  EXPECT_LE(r.clients.minQueries, r.clients.meanQueries);
  EXPECT_GE(r.clients.maxQueries, r.clients.meanQueries);
  EXPECT_GT(r.clients.fairness, 0.2);
  EXPECT_LE(r.clients.fairness, 1.0 + 1e-12);
  // Mean per-client queries times population equals the total.
  EXPECT_NEAR(r.clients.meanQueries * 20.0,
              static_cast<double>(r.queriesCompleted), 1e-6);
}

TEST(Simulation, GcoreGroupSizeIsConfigurable) {
  auto cfg = smallConfig(schemes::SchemeKind::kGcore);
  cfg.gcoreGroupSize = 8;
  const auto fine = Simulation(cfg).run();
  EXPECT_EQ(fine.staleReads, 0u);
  EXPECT_GT(fine.queriesCompleted, 0u);
  cfg.gcoreGroupSize = 250;  // half the database per group
  const auto coarse = Simulation(cfg).run();
  EXPECT_EQ(coarse.staleReads, 0u);
  // Coarser groups -> smaller checks but more collateral invalidations.
  EXPECT_LE(coarse.uplink.controlBits, fine.uplink.controlBits + 1e9);
}

TEST(Simulation, AsymmetricUplinkSlowsButStaysCorrect) {
  auto cfg = smallConfig(schemes::SchemeKind::kTsChecking);
  cfg.uplinkBps = 100.0;  // 1% of downlink
  const auto slow = Simulation(cfg).run();
  cfg.uplinkBps = 10000.0;
  const auto fast = Simulation(cfg).run();
  EXPECT_EQ(slow.staleReads, 0u);
  EXPECT_LT(slow.queriesCompleted, fast.queriesCompleted);
}

}  // namespace
}  // namespace mci::core

#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace mci::core {
namespace {

TEST(Analysis, IrShareGrowsLinearlyForBs) {
  SimConfig cfg;
  cfg.scheme = schemes::SchemeKind::kBs;
  cfg.dbSize = 10000;
  const auto small = analyze(cfg);
  cfg.dbSize = 80000;
  const auto large = analyze(cfg);
  // 2N bits per 20 s at 10 kbps: ~10% at N=10000, ~80% at N=80000.
  EXPECT_NEAR(small.irShare, 0.10, 0.02);
  EXPECT_NEAR(large.irShare, 0.80, 0.03);
  EXPECT_LT(large.dataCapacityPerSecond, small.dataCapacityPerSecond / 3);
}

TEST(Analysis, WindowReportsAreCheapAtAnyDatabaseSize) {
  SimConfig cfg;
  cfg.scheme = schemes::SchemeKind::kAaw;
  cfg.dbSize = 80000;
  const auto m = analyze(cfg);
  EXPECT_LT(m.irShare, 0.01);
}

TEST(Analysis, UniformWorkloadMissesEverything) {
  SimConfig cfg;
  const auto m = analyze(cfg);
  EXPECT_DOUBLE_EQ(m.expectedMissRatio, 1.0);
}

TEST(Analysis, HotColdMissRatioTracksCacheCoverage) {
  SimConfig cfg;
  cfg.workload = WorkloadKind::kHotCold;
  cfg.dbSize = 10000;            // cache 200 >= hot 100: full coverage
  cfg.hotQuery = {0, 100, 0.8};
  EXPECT_NEAR(analyze(cfg).expectedMissRatio, 0.2, 1e-9);
  cfg.dbSize = 2500;             // cache 50 < hot 100: half coverage
  EXPECT_NEAR(analyze(cfg).expectedMissRatio, 1.0 - 0.8 * 0.5, 1e-9);
}

TEST(Analysis, DemandReflectsDozeTime) {
  SimConfig cfg;
  cfg.disconnectProb = 0.0;
  const auto active = analyze(cfg);
  cfg.disconnectProb = 0.5;
  cfg.meanDisconnectTime = 4000.0;
  const auto sleepy = analyze(cfg);
  EXPECT_GT(active.demandQueriesPerSecond,
            5.0 * sleepy.demandQueriesPerSecond);
}

TEST(Analysis, ThroughputIsTheBindingConstraint) {
  SimConfig cfg;  // UNIFORM: capacity-limited at defaults
  const auto m = analyze(cfg);
  EXPECT_LE(m.throughputQueriesPerSecond, m.demandQueriesPerSecond + 1e-12);
  EXPECT_LE(m.throughputQueriesPerSecond * 1.0,
            m.dataCapacityPerSecond + 1e-12);
}

// ---- theory vs. simulation ----

struct TheoryVsSim : ::testing::TestWithParam<schemes::SchemeKind> {};

TEST_P(TheoryVsSim, PredictsFullScaleThroughputWithin25Percent) {
  SimConfig cfg;
  cfg.scheme = GetParam();
  cfg.simTime = 50000.0;
  cfg.dbSize = 10000;
  cfg.meanDisconnectTime = 400.0;
  cfg.seed = 23;
  const double predicted = analyze(cfg).predictedQueries(cfg.simTime);
  const double measured = Simulation(cfg).run().throughput();
  EXPECT_NEAR(measured, predicted, 0.25 * predicted)
      << "predicted " << predicted << ", measured " << measured;
}

INSTANTIATE_TEST_SUITE_P(Schemes, TheoryVsSim,
                         ::testing::Values(schemes::SchemeKind::kAaw,
                                           schemes::SchemeKind::kTsChecking,
                                           schemes::SchemeKind::kBs,
                                           schemes::SchemeKind::kTs),
                         [](const auto& paramInfo) {
                           std::string n = schemes::schemeName(paramInfo.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Analysis, PredictsTheBsCollapseFactor) {
  SimConfig cfg;
  cfg.scheme = schemes::SchemeKind::kBs;
  cfg.simTime = 50000.0;
  cfg.meanDisconnectTime = 400.0;
  cfg.seed = 23;

  cfg.dbSize = 10000;
  const double pSmall = analyze(cfg).predictedQueries(cfg.simTime);
  const double mSmall = Simulation(cfg).run().throughput();
  cfg.dbSize = 80000;
  const double pLarge = analyze(cfg).predictedQueries(cfg.simTime);
  const double mLarge = Simulation(cfg).run().throughput();

  const double predictedCollapse = pLarge / pSmall;
  const double measuredCollapse = mLarge / mSmall;
  EXPECT_NEAR(measuredCollapse, predictedCollapse, 0.15)
      << "predicted x" << predictedCollapse << ", measured x"
      << measuredCollapse;
}

TEST(Analysis, UplinkPredictionMatchesTheOrdering) {
  SimConfig cfg;
  cfg.meanDisconnectTime = 400.0;
  cfg.scheme = schemes::SchemeKind::kBs;
  EXPECT_DOUBLE_EQ(analyze(cfg).uplinkCheckBitsPerQuery, 0.0);
  cfg.scheme = schemes::SchemeKind::kAaw;
  const double aaw = analyze(cfg).uplinkCheckBitsPerQuery;
  cfg.scheme = schemes::SchemeKind::kGcore;
  const double gcore = analyze(cfg).uplinkCheckBitsPerQuery;
  cfg.scheme = schemes::SchemeKind::kTsChecking;
  const double check = analyze(cfg).uplinkCheckBitsPerQuery;
  EXPECT_GT(aaw, 0.0);
  EXPECT_GT(gcore, aaw);
  EXPECT_GT(check, gcore);
}

TEST(Analysis, UplinkPredictionWithinFactorTwoOfSimulation) {
  SimConfig cfg;
  cfg.scheme = schemes::SchemeKind::kAaw;
  cfg.simTime = 50000.0;
  cfg.meanDisconnectTime = 400.0;
  cfg.seed = 23;
  const double predicted = analyze(cfg).uplinkCheckBitsPerQuery;
  const double measured =
      Simulation(cfg).run().uplinkCheckBitsPerQuery();
  EXPECT_GT(measured, predicted / 2.0);
  EXPECT_LT(measured, predicted * 2.0);
}

TEST(Analysis, UplinkPredictionGrowsWithDisconnectionProbability) {
  SimConfig cfg;
  cfg.scheme = schemes::SchemeKind::kTsChecking;
  cfg.meanDisconnectTime = 400.0;
  cfg.disconnectProb = 0.1;
  const double low = analyze(cfg).uplinkCheckBitsPerQuery;
  cfg.disconnectProb = 0.8;
  const double high = analyze(cfg).uplinkCheckBitsPerQuery;
  EXPECT_GT(high, 3.0 * low);
}

TEST(Analysis, MultiChannelCapacityAddsUp) {
  SimConfig cfg;
  cfg.scheme = schemes::SchemeKind::kBs;
  cfg.dbSize = 40000;
  const auto shared = analyze(cfg);
  cfg.dataChannelBps = {10000.0};
  const auto split = analyze(cfg);
  // A dedicated 10 kbps data channel beats the BS-taxed shared channel.
  EXPECT_GT(split.dataCapacityPerSecond, shared.dataCapacityPerSecond);
}

}  // namespace
}  // namespace mci::core

#include "workload/pattern.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mci::workload {
namespace {

TEST(AccessPattern, UniformCoversWholeDatabase) {
  const auto p = AccessPattern::uniform(50);
  sim::Rng rng(1);
  std::map<db::ItemId, int> counts;
  for (int i = 0; i < 50000; ++i) {
    const db::ItemId item = p.pick(rng);
    ASSERT_LT(item, 50u);
    ++counts[item];
  }
  EXPECT_EQ(counts.size(), 50u);
  for (const auto& [item, count] : counts) {
    EXPECT_NEAR(count, 1000, 200) << "item " << item;
  }
}

TEST(AccessPattern, HotColdRespectsHotProbability) {
  const auto p = AccessPattern::hotCold(1000, {0, 100, 0.8});
  sim::Rng rng(2);
  int hot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (p.pick(rng) < 100) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.8, 0.01);
}

TEST(AccessPattern, ColdPicksExcludeHotRegion) {
  // hotProb = 0: every pick must land in the cold remainder.
  const auto p = AccessPattern::hotCold(200, {50, 100, 0.0});
  sim::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const db::ItemId item = p.pick(rng);
    EXPECT_TRUE(item < 50 || item >= 100) << item;
    EXPECT_LT(item, 200u);
  }
}

TEST(AccessPattern, ColdPicksAreUniformOverRemainder) {
  const auto p = AccessPattern::hotCold(20, {5, 10, 0.0});
  sim::Rng rng(4);
  std::map<db::ItemId, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[p.pick(rng)];
  EXPECT_EQ(counts.size(), 15u);  // 20 - 5 hot
  for (const auto& [item, count] : counts) {
    EXPECT_NEAR(count, 2000, 350) << "item " << item;
  }
}

TEST(AccessPattern, HotPicksInsideBounds) {
  const auto p = AccessPattern::hotCold(1000, {200, 300, 1.0});
  sim::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const db::ItemId item = p.pick(rng);
    EXPECT_GE(item, 200u);
    EXPECT_LT(item, 300u);
  }
}

TEST(AccessPattern, IsHotClassifier) {
  const auto hc = AccessPattern::hotCold(1000, {0, 100, 0.8});
  EXPECT_TRUE(hc.isHot(0));
  EXPECT_TRUE(hc.isHot(99));
  EXPECT_FALSE(hc.isHot(100));
  const auto u = AccessPattern::uniform(1000);
  EXPECT_FALSE(u.isHot(0));
}

TEST(AccessPattern, DescribeMentionsKind) {
  EXPECT_NE(AccessPattern::uniform(10).describe().find("UNIFORM"),
            std::string::npos);
  EXPECT_NE(AccessPattern::hotCold(100, {0, 10, 0.5}).describe().find("HOTCOLD"),
            std::string::npos);
}

}  // namespace
}  // namespace mci::workload

#include "workload/query_generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mci::workload {
namespace {

QueryGenerator makeGen(double meanItems, std::uint64_t seed = 1,
                       std::size_t dbSize = 1000) {
  QueryGenerator::Params p;
  p.meanThinkTime = 100.0;
  p.meanItemsPerQuery = meanItems;
  return QueryGenerator(AccessPattern::uniform(dbSize), p, sim::Rng(seed));
}

TEST(QueryGenerator, SingleItemQueriesWhenMeanIsOne) {
  auto gen = makeGen(1.0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(gen.nextQuery().size(), 1u);
  }
}

TEST(QueryGenerator, ItemsAreDistinctWithinAQuery) {
  auto gen = makeGen(10.0, 2, 100);
  for (int i = 0; i < 200; ++i) {
    const auto q = gen.nextQuery();
    const std::set<db::ItemId> uniq(q.begin(), q.end());
    EXPECT_EQ(uniq.size(), q.size());
  }
}

TEST(QueryGenerator, MeanItemsPerQueryMatches) {
  auto gen = makeGen(10.0, 3, 10000);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(gen.nextQuery().size());
  EXPECT_NEAR(total / n, 10.0, 0.2);
}

TEST(QueryGenerator, QueriesNeverEmpty) {
  auto gen = makeGen(1.0, 4, 2);  // tiny database
  for (int i = 0; i < 100; ++i) EXPECT_GE(gen.nextQuery().size(), 1u);
}

TEST(QueryGenerator, ThinkTimeMeanMatches) {
  auto gen = makeGen(1.0, 5);
  double total = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += gen.thinkTime();
  EXPECT_NEAR(total / n, 100.0, 2.0);
}

TEST(QueryGenerator, ItemsComeFromPattern) {
  QueryGenerator::Params p;
  p.meanItemsPerQuery = 3.0;
  QueryGenerator gen(AccessPattern::hotCold(1000, {0, 10, 1.0}), p, sim::Rng(6));
  for (int i = 0; i < 100; ++i) {
    for (db::ItemId item : gen.nextQuery()) EXPECT_LT(item, 10u);
  }
}

TEST(QueryGenerator, DeterministicPerSeed) {
  auto a = makeGen(5.0, 7);
  auto b = makeGen(5.0, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.nextQuery(), b.nextQuery());
    EXPECT_DOUBLE_EQ(a.thinkTime(), b.thinkTime());
  }
}

}  // namespace
}  // namespace mci::workload

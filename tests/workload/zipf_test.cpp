#include "workload/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hpp"

namespace mci::workload {
namespace {

TEST(ZipfGenerator, AnalyticProbabilitiesSumToOne) {
  for (const double theta : {0.0, 0.5, 0.99}) {
    const ZipfGenerator z(500, theta);
    double sum = 0;
    for (std::size_t k = 0; k < z.numItems(); ++k) sum += z.probability(k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "theta=" << theta;
  }
}

TEST(ZipfGenerator, ProbabilityIsMonotoneNonIncreasingInRank) {
  const ZipfGenerator z(1000, 0.8);
  for (std::size_t k = 1; k < z.numItems(); ++k) {
    EXPECT_LE(z.probability(k), z.probability(k - 1)) << "rank " << k;
  }
}

TEST(ZipfGenerator, ThetaZeroIsUniform) {
  const ZipfGenerator z(250, 0.0);
  for (std::size_t k = 0; k < z.numItems(); ++k) {
    EXPECT_NEAR(z.probability(k), 1.0 / 250.0, 1e-12);
  }
}

TEST(ZipfGenerator, PicksStayInRange) {
  const ZipfGenerator z(37, 0.9);
  sim::Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    const db::ItemId item = z.pick(rng);
    ASSERT_LT(item, 37u);
  }
}

TEST(ZipfGenerator, SingleItemAlwaysRankZero) {
  const ZipfGenerator z(1, 0.7);
  sim::Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.pick(rng), 0u);
}

TEST(ZipfGenerator, DeterministicForEqualSeeds) {
  const ZipfGenerator z(1000, 0.6);
  sim::Rng a(99);
  sim::Rng b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z.pick(a), z.pick(b));
}

// The empirical pick frequency of every head rank must track the analytic
// law: that is the property the swarm's workload knob is sold on.
TEST(ZipfGenerator, EmpiricalHeadFrequenciesMatchAnalytic) {
  const std::size_t n = 200;
  const ZipfGenerator z(n, 0.8);
  sim::Rng rng(2024);
  const int draws = 400000;
  std::vector<int> count(n, 0);
  for (int i = 0; i < draws; ++i) ++count[z.pick(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    const double expect = z.probability(k);
    const double got = static_cast<double>(count[k]) / draws;
    // 5 sigma of a binomial proportion around the analytic value.
    const double tol = 5.0 * std::sqrt(expect * (1 - expect) / draws);
    EXPECT_NEAR(got, expect, tol) << "rank " << k;
  }
}

// Skew sanity: a hotter theta concentrates more mass on the top ranks.
TEST(ZipfGenerator, HigherThetaIsMoreSkewed) {
  const ZipfGenerator cold(1000, 0.2);
  const ZipfGenerator hot(1000, 0.95);
  double coldHead = 0;
  double hotHead = 0;
  for (std::size_t k = 0; k < 10; ++k) {
    coldHead += cold.probability(k);
    hotHead += hot.probability(k);
  }
  EXPECT_GT(hotHead, coldHead * 2);
}

TEST(ZipfGenerator, PickConsumesExactlyOneUniform) {
  const ZipfGenerator z(100, 0.5);
  sim::Rng a(7);
  sim::Rng b(7);
  (void)z.pick(a);
  (void)b.uniform01();
  // After one draw each, the streams must be in lockstep again.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.uniform01(), b.uniform01());
}

}  // namespace
}  // namespace mci::workload

#include "workload/disconnect.hpp"

#include <gtest/gtest.h>

namespace mci::workload {
namespace {

TEST(Disconnector, CoinMatchesProbability) {
  Disconnector::Params p;
  p.probability = 0.25;
  Disconnector d(p, sim::Rng(1));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += d.shouldDisconnect() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Disconnector, ZeroProbabilityNeverDisconnects) {
  Disconnector::Params p;
  p.probability = 0.0;
  Disconnector d(p, sim::Rng(2));
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(d.shouldDisconnect());
}

TEST(Disconnector, DurationMeanMatches) {
  Disconnector::Params p;
  p.meanDuration = 400.0;
  Disconnector d(p, sim::Rng(3));
  double total = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += d.duration();
  EXPECT_NEAR(total / n, 400.0, 8.0);
}

TEST(Disconnector, DurationsArePositive) {
  Disconnector::Params p;
  p.meanDuration = 10.0;
  Disconnector d(p, sim::Rng(4));
  for (int i = 0; i < 10000; ++i) EXPECT_GT(d.duration(), 0.0);
}

TEST(DisconnectModel, NamesAreStable) {
  EXPECT_STREQ(disconnectModelName(DisconnectModel::kIntervalCoin),
               "interval-coin");
  EXPECT_STREQ(disconnectModelName(DisconnectModel::kPostQuery), "post-query");
}

}  // namespace
}  // namespace mci::workload

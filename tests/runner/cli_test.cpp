#include "runner/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace mci::runner {
namespace {

Cli makeCli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm) {
  auto cli = makeCli({"--simtime=5000", "--seed=7"});
  EXPECT_DOUBLE_EQ(cli.getDouble("simtime", 0), 5000.0);
  EXPECT_EQ(cli.getInt("seed", 0), 7);
}

TEST(Cli, ParsesSpaceForm) {
  auto cli = makeCli({"--threads", "4"});
  EXPECT_EQ(cli.getInt("threads", 0), 4);
}

TEST(Cli, FallbacksWhenAbsent) {
  auto cli = makeCli({});
  EXPECT_DOUBLE_EQ(cli.getDouble("simtime", 123.0), 123.0);
  EXPECT_EQ(cli.getInt("seed", 42), 42);
  EXPECT_EQ(cli.getStr("mode", "def"), "def");
  EXPECT_FALSE(cli.has("csv"));
}

TEST(Cli, BareFlagIsPresent) {
  auto cli = makeCli({"--csv"});
  EXPECT_TRUE(cli.has("csv"));
}

TEST(Cli, BareFlagFollowedByFlag) {
  auto cli = makeCli({"--csv", "--seed=1"});
  EXPECT_TRUE(cli.has("csv"));
  EXPECT_EQ(cli.getInt("seed", 0), 1);
}

TEST(Cli, StringValues) {
  auto cli = makeCli({"--workload=HOTCOLD"});
  EXPECT_EQ(cli.getStr("workload", ""), "HOTCOLD");
}

TEST(Cli, UnknownArgsReported) {
  auto cli = makeCli({"--typo=3", "--seed=1"});
  (void)cli.getInt("seed", 0);
  const auto unknown = cli.unknownArgs();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Cli, GetSchemeParsesValidNames) {
  auto cli = makeCli({"--scheme=BS"});
  const auto kind = cli.getScheme("scheme", schemes::SchemeKind::kAaw);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, schemes::SchemeKind::kBs);
}

TEST(Cli, GetSchemeFallsBackWhenAbsent) {
  auto cli = makeCli({});
  const auto kind = cli.getScheme("scheme", schemes::SchemeKind::kAfw);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, schemes::SchemeKind::kAfw);
}

TEST(Cli, GetSchemeRejectsTypos) {
  // A typo'd scheme must not silently run the default: the caller gets
  // nullopt (and the valid set is printed to stderr) so it can exit.
  auto cli = makeCli({"--scheme=AWW"});
  EXPECT_FALSE(cli.getScheme("scheme", schemes::SchemeKind::kAaw).has_value());
}

TEST(Cli, QueriedArgsNotReportedUnknown) {
  auto cli = makeCli({"--seed=1"});
  (void)cli.getInt("seed", 0);
  EXPECT_TRUE(cli.unknownArgs().empty());
}

TEST(Cli, GetIntBoundedParsesValidValues) {
  auto cli = makeCli({"--shards=3", "--shard-index", "2"});
  EXPECT_EQ(cli.getIntBounded("shards", 1, 1, 1024), 3);
  EXPECT_EQ(cli.getIntBounded("shard-index", 0, 0, 2), 2);
}

TEST(Cli, GetIntBoundedFallsBackWhenAbsent) {
  auto cli = makeCli({});
  EXPECT_EQ(cli.getIntBounded("shards", 1, 1, 1024), 1);
  // The fallback is the caller's, not clamped: bounds apply to user input.
  EXPECT_EQ(cli.getIntBounded("shards", 0, 1, 1024), 0);
}

TEST(Cli, GetIntBoundedRejectsTypos) {
  // `--shards banana` must not silently run a default-size cluster: the
  // caller gets nullopt (and the accepted range is printed to stderr), the
  // same contract as getScheme.
  EXPECT_FALSE(
      makeCli({"--shards=banana"}).getIntBounded("shards", 1, 1, 1024));
  EXPECT_FALSE(makeCli({"--shards=3x"}).getIntBounded("shards", 1, 1, 1024));
  EXPECT_FALSE(makeCli({"--shards="}).getIntBounded("shards", 1, 1, 1024));
}

TEST(Cli, GetIntBoundedRejectsOutOfRangeValues) {
  EXPECT_FALSE(makeCli({"--shards=0"}).getIntBounded("shards", 1, 1, 1024));
  EXPECT_FALSE(makeCli({"--shards=1025"}).getIntBounded("shards", 1, 1, 1024));
  EXPECT_FALSE(
      makeCli({"--shard-index=-1"}).getIntBounded("shard-index", 0, 0, 3));
  EXPECT_EQ(makeCli({"--shards=1024"}).getIntBounded("shards", 1, 1, 1024),
            1024);
}

}  // namespace
}  // namespace mci::runner

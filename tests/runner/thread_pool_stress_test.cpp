// Concurrency stress for ThreadPool — the component every sweep's numbers
// flow through. Designed to run under the tsan preset (cmake --preset tsan):
// the scenarios hammer exactly the handoffs (submit vs drain, wait vs
// concurrent submit, destruction while draining, exceptions crossing the
// worker boundary) where a data race would silently skew figure data.

#include "runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mci::runner {
namespace {

TEST(ThreadPoolStress, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 500;
  std::atomic<int> done{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &done] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.wait();
  EXPECT_EQ(done.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, TaskExceptionSurfacesAtWaitAndPoolSurvives) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i % 7 == 0) throw std::runtime_error("task failure");
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // Every task still ran (a throwing task must not kill its worker) ...
  EXPECT_EQ(ran.load(), 64);
  // ... and the pool is reusable with the error slot cleared.
  std::atomic<int> after{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&after] { after.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(after.load(), 32);
}

TEST(ThreadPoolStress, WaitRacesConcurrentSubmitters) {
  // wait() only promises that tasks submitted before the call have
  // finished; here it races fresh submissions from other threads. tsan
  // checks the synchronization, the counters check nothing is lost.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> submitters;
  std::atomic<int> submitted{0};
  submitters.reserve(3);
  for (int s = 0; s < 3; ++s) {
    submitters.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
        submitted.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < 50; ++i) pool.wait();
  stop.store(true);
  for (std::thread& t : submitters) t.join();
  pool.wait();
  EXPECT_EQ(done.load(), submitted.load());
}

TEST(ThreadPoolStress, DestructorDrainsPendingTasks) {
  // More tasks than workers, each slow enough that the queue is deep when
  // the destructor runs: every task must still execute exactly once.
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&done] {
        std::this_thread::yield();
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait(): destruction races the drain.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStress, DestructorSwallowsUnobservedTaskError) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never observed"); });
    for (int i = 0; i < 16; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolStress, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallelFor(pool, kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStress, SingleThreadPoolStillHonorsContract) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
}  // namespace mci::runner

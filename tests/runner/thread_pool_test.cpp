#include "runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mci::runner {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();
  SUCCEED();
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit([&] { count.fetch_add(1); });
  });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, MultipleWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallelFor(pool, 100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  parallelFor(pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) pool.submit([&] { count.fetch_add(1); });
    pool.wait();
  }
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace mci::runner

#include "runner/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "runner/figures.hpp"

namespace mci::runner {
namespace {

SweepSpec tinySweep() {
  SweepSpec spec;
  spec.base.simTime = 1500.0;
  spec.base.numClients = 10;
  spec.base.dbSize = 200;
  spec.base.seed = 5;
  spec.xs = {200, 400};
  spec.schemes = {schemes::SchemeKind::kAaw, schemes::SchemeKind::kBs};
  spec.apply = [](core::SimConfig& cfg, double x) {
    cfg.dbSize = static_cast<std::size_t>(x);
  };
  return spec;
}

TEST(Sweep, ProducesOneCellPerXSchemePair) {
  const auto cells = runSweep(tinySweep(), 2);
  ASSERT_EQ(cells.size(), 4u);
  // Deterministic order: x-major, scheme-minor.
  EXPECT_DOUBLE_EQ(cells[0].x, 200.0);
  EXPECT_EQ(cells[0].scheme, schemes::SchemeKind::kAaw);
  EXPECT_DOUBLE_EQ(cells[1].x, 200.0);
  EXPECT_EQ(cells[1].scheme, schemes::SchemeKind::kBs);
  EXPECT_DOUBLE_EQ(cells[3].x, 400.0);
  for (const auto& c : cells) {
    EXPECT_GT(c.result.queriesCompleted, 0u);
    EXPECT_EQ(c.result.staleReads, 0u);
  }
}

TEST(Sweep, AppliesTheSweptParameter) {
  const auto cells = runSweep(tinySweep(), 1);
  // Larger DB -> larger BS report share; just verify the x landed by
  // checking the IR bits differ between the two BS cells.
  EXPECT_NE(cells[1].result.downlink.irBits, cells[3].result.downlink.irBits);
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  const auto serial = runSweep(tinySweep(), 1);
  const auto parallel = runSweep(tinySweep(), 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.queriesCompleted,
              parallel[i].result.queriesCompleted);
    EXPECT_DOUBLE_EQ(serial[i].result.uplink.controlBits,
                     parallel[i].result.uplink.controlBits);
  }
}

TEST(Sweep, CommonRandomNumbersShareSeedAcrossSchemes) {
  // With CRN, both schemes at the same x face the same workload: the same
  // number of update transactions hit the database.
  auto spec = tinySweep();
  spec.schemes = {schemes::SchemeKind::kTs, schemes::SchemeKind::kBs};
  const auto cells = runSweep(spec, 1);
  // Queries differ by scheme, but report counts (driven by the clock) and
  // x-dependence of seeds can be probed via determinism: rerun must match.
  const auto again = runSweep(spec, 1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].result.queriesCompleted,
              again[i].result.queriesCompleted);
  }
}

TEST(Sweep, ProgressCallbackReachesTotal) {
  std::atomic<std::size_t> last{0};
  const auto spec = tinySweep();
  runSweep(spec, 2, [&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 4u);
    std::size_t prev = last.load();
    while (done > prev && !last.compare_exchange_weak(prev, done)) {
    }
  });
  EXPECT_EQ(last.load(), 4u);
}

TEST(Figures, RegistryCoversAllTwelve) {
  const auto& figs = paperFigures();
  ASSERT_EQ(figs.size(), 12u);
  for (int n = 5; n <= 16; ++n) {
    const auto& f = figureByNumber(n);
    EXPECT_EQ(f.number, n);
    EXPECT_FALSE(f.title.empty());
    EXPECT_FALSE(f.sweep.xs.empty());
    EXPECT_EQ(f.sweep.schemes.size(), 4u);
    ASSERT_TRUE(f.sweep.apply);
    // The apply hook must leave the config valid at every x.
    for (double x : f.sweep.xs) {
      core::SimConfig cfg = f.sweep.base;
      f.sweep.apply(cfg, x);
      EXPECT_NO_THROW(cfg.validate()) << "fig " << n << " x=" << x;
    }
  }
}

TEST(Figures, MetricsLabelled) {
  EXPECT_STREQ(figureMetricLabel(FigureMetric::kThroughput),
               "No. of Queries Answered");
  EXPECT_NE(std::string(figureMetricLabel(FigureMetric::kUplinkBitsPerQuery))
                .find("bits/query"),
            std::string::npos);
}

TEST(Figures, RunFigureShapesData) {
  FigureSpec spec = figureByNumber(5);
  spec.sweep.xs = {200, 400};  // shrink for test speed
  spec.sweep.base.numClients = 10;
  spec.sweep.base.dbSize = 200;
  RunOptions opts;
  opts.simTime = 1500;
  opts.threads = 2;
  opts.quiet = true;
  const auto data = runFigure(spec, opts);
  EXPECT_EQ(data.xs.size(), 2u);
  ASSERT_EQ(data.series.size(), 4u);
  EXPECT_EQ(data.series[0].name, "adaptive with adjusting window");
  for (const auto& s : data.series) {
    ASSERT_EQ(s.ys.size(), 2u);
    for (double y : s.ys) EXPECT_GT(y, 0.0);
  }
}

TEST(Figures, ReplicationsAverageAcrossSeeds) {
  FigureSpec spec = figureByNumber(5);
  spec.sweep.xs = {200};
  spec.sweep.base.numClients = 10;
  spec.sweep.base.dbSize = 200;
  RunOptions opts;
  opts.simTime = 1500;
  opts.quiet = true;

  opts.replications = 1;
  opts.seed = 5;
  const auto one = runFigure(spec, opts);
  opts.seed = 5 + 7919;  // the second replication's base seed
  const auto two = runFigure(spec, opts);

  opts.seed = 5;
  opts.replications = 2;
  const auto mean = runFigure(spec, opts);
  EXPECT_NE(mean.subtitle.find("2 replications"), std::string::npos);
  for (std::size_t si = 0; si < mean.series.size(); ++si) {
    EXPECT_NEAR(mean.series[si].ys[0],
                (one.series[si].ys[0] + two.series[si].ys[0]) / 2.0, 1e-9);
  }
}

TEST(Figures, ReplicationsProduceErrorBars) {
  FigureSpec spec = figureByNumber(5);
  spec.sweep.xs = {200};
  spec.sweep.base.numClients = 10;
  spec.sweep.base.dbSize = 200;
  RunOptions opts;
  opts.simTime = 1500;
  opts.quiet = true;
  opts.replications = 3;
  const auto data = runFigure(spec, opts);
  for (const auto& s : data.series) {
    ASSERT_EQ(s.sds.size(), 1u);
    EXPECT_GE(s.sds[0], 0.0);
  }
  // The rendered outputs carry the spread.
  EXPECT_NE(data.toTable().find("+-"), std::string::npos);
  EXPECT_NE(data.toCsv().find(" sd"), std::string::npos);
}

TEST(Figures, MetricValueExtraction) {
  metrics::SimResult r;
  r.queriesCompleted = 10;
  r.uplink.controlBits = 50;
  EXPECT_DOUBLE_EQ(figureMetricValue(FigureMetric::kThroughput, r), 10.0);
  EXPECT_DOUBLE_EQ(figureMetricValue(FigureMetric::kUplinkBitsPerQuery, r), 5.0);
}

}  // namespace
}  // namespace mci::runner

# Sanitizer configuration for every target in the tree (src, tests, bench,
# examples). Included from the top-level CMakeLists before any
# add_subdirectory so the flags apply directory-wide.
#
#   MCI_SANITIZE          semicolon-separated sanitizer list. Supported:
#                           address;undefined   (the asan-ubsan preset)
#                           thread              (the tsan preset)
#                         Empty (default) = no instrumentation.
#
# Sanitized builds also define MCI_ENABLE_DCHECKS so the expensive
# MCI_DCHECK invariants (src/core/check.hpp) run exactly where the cheap
# reproduction of a failure matters most.

set(MCI_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to enable (address;undefined | thread)")

if(MCI_SANITIZE)
  set(_mci_known_sanitizers address undefined thread leak)
  foreach(_san IN LISTS MCI_SANITIZE)
    if(NOT _san IN_LIST _mci_known_sanitizers)
      message(FATAL_ERROR "MCI_SANITIZE: unknown sanitizer '${_san}' "
                          "(supported: ${_mci_known_sanitizers})")
    endif()
  endforeach()

  if("thread" IN_LIST MCI_SANITIZE AND "address" IN_LIST MCI_SANITIZE)
    message(FATAL_ERROR "MCI_SANITIZE: 'thread' and 'address' are mutually "
                        "exclusive; configure two build trees instead "
                        "(cmake --preset asan-ubsan / --preset tsan)")
  endif()

  string(REPLACE ";" "," _mci_sanitize_csv "${MCI_SANITIZE}")
  add_compile_options(
    -fsanitize=${_mci_sanitize_csv}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all
    -g
  )
  add_link_options(-fsanitize=${_mci_sanitize_csv})
  add_compile_definitions(MCI_ENABLE_DCHECKS=1)
  message(STATUS "mobicache: sanitizers enabled: ${_mci_sanitize_csv}")
endif()

#!/usr/bin/env python3
"""mci-analyze: libclang rule engine for the project's prose contracts.

Runs AST-level checks that regexes (tools/lint_determinism.py) and the
compiler cannot express: nothing blocks inside Reactor callbacks, codec
reads go through the bounded cursor, MCI_HOT paths never allocate,
send/decode results are consumed, unordered iteration never feeds output,
decoded wire values are bounds-checked before use (wire-taint dataflow),
and encode/decode field sequences stay symmetric (codec-symmetry).

Exit codes (the run_clang_tidy.sh contract, adapted):
  0   clean (no findings beyond the baseline)
  1   new findings
  2   setup error (also: libclang missing under MCI_ANALYZE_STRICT=1)
  77  skipped — libclang unavailable (CTest SKIP_RETURN_CODE)

Rules marked REQUIRES_CLANG = False (codec-symmetry) are textual and run
even without libclang; a run selecting only those never skips.

Usage:
  mci_analyze.py --all                        # every rule over src/
  mci_analyze.py --rule hot-path-alloc f.cpp  # one rule, explicit files
  mci_analyze.py --all --jobs 8 --sarif out.sarif
  mci_analyze.py --all --write-baseline       # refresh tools/analyze/baseline.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import baseline as baseline_mod  # noqa: E402
import engine  # noqa: E402

_REPO_ROOT = os.path.dirname(os.path.dirname(_HERE))
_DEFAULT_BASELINE = os.path.join(_HERE, "baseline.json")

# Directories whose TUs are analysed in --all mode. tests/ and bench/ are
# deliberately out: they may exercise error paths the rules forbid.
_ALL_PREFIXES = ("src/",)


def _skip(reason: str, strict: bool, skip_ok: bool = False) -> int:
    if strict:
        print("mci-analyze: ERROR (strict): %s" % reason, file=sys.stderr)
        return engine.EXIT_SETUP_ERROR
    print("mci-analyze: SKIPPED: %s" % reason, file=sys.stderr)
    return engine.EXIT_OK if skip_ok else engine.EXIT_SKIPPED


def _requires_clang(mod) -> bool:
    return getattr(mod, "REQUIRES_CLANG", True)


def _default_targets(ctx) -> list:
    """Fallback file scan for clang-free runs without a compile db."""
    out = []
    for prefix in _ALL_PREFIXES:
        for root, _dirs, files in os.walk(
                os.path.join(_REPO_ROOT, prefix.rstrip("/"))):
            for name in sorted(files):
                if name.endswith((".cpp", ".cc", ".hpp", ".h")):
                    out.append(os.path.join(root, name))
    return sorted(out)


def _parse_targets(ctx, targets, compdb, fallback, jobs: int) -> int:
    """Parses every target TU, with --jobs worker threads when asked.
    Results are committed in target order so TU order (and therefore
    finding order) is deterministic regardless of parallelism."""
    argv_of = {
        path: compdb.get(os.path.normpath(path), fallback)
        for path in targets
    }
    if jobs <= 1 or len(targets) <= 1:
        results = [ctx.parse_detached(p, argv_of[p]) for p in targets]
    else:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(
                lambda p: ctx.parse_detached(p, argv_of[p]), targets))
    parsed = 0
    for path, (tu, err) in zip(targets, results):
        if ctx.commit_tu(path, tu, err):
            parsed += 1
    return parsed


def _explain(findings, wanted: str) -> int:
    """Prints one finding in full: location, message, detail, and the
    cross-function source -> sink chain (Finding.related, source first)."""
    matches = [f for f in findings
               if engine.finding_id(f).startswith(wanted)]
    if not matches:
        print("mci-analyze: no finding matches id %r in this run "
              "(ids are printed next to each finding; re-run with the "
              "same rules and paths)" % wanted, file=sys.stderr)
        return engine.EXIT_SETUP_ERROR
    for f in matches:
        sym = (" [in %s]" % f.symbol) if f.symbol else ""
        print("%s: %s" % (engine.finding_id(f), f.rule))
        print("  %s:%d:%d%s" % (f.file, f.line, f.column, sym))
        print("  %s" % f.message)
        if f.detail:
            print("  note: %s" % f.detail)
        if f.related:
            print("  chain (source -> sink, %d step(s)):" % len(f.related))
            for i, step in enumerate(f.related, 1):
                print("    %d. %s:%d  %s"
                      % (i, step.get("file", f.file), step.get("line", 0),
                         step.get("message", "")))
    if len(matches) > 1:
        print("mci-analyze: note: id prefix %r matched %d finding(s); "
              "use more digits to narrow" % (wanted, len(matches)))
    return engine.EXIT_OK


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="mci_analyze.py",
                                 description=__doc__.split("\n\n")[0])
    ap.add_argument("paths", nargs="*",
                    help="source files to analyse (default: all of src/ "
                    "from the compile db)")
    ap.add_argument("--all", action="store_true",
                    help="run every rule (default when no --rule given)")
    ap.add_argument("--rule", action="append", default=[],
                    help="run only this rule (repeatable)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--probe-libclang", action="store_true",
                    help="exit 0 if libclang loads, else the usual skip "
                    "contract (test harness gate)")
    ap.add_argument("--build-dir", default=os.path.join(_REPO_ROOT, "build"),
                    help="directory holding compile_commands.json")
    ap.add_argument("--baseline", default=_DEFAULT_BASELINE)
    ap.add_argument("--no-baseline", action="store_true",
                    help="report every finding (fixture tests)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline from this run's findings")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parse translation units with N threads "
                    "(libclang releases the GIL during parse)")
    ap.add_argument("--call-budget", type=int, default=600,
                    help="max functions visited per reachability walk")
    ap.add_argument("--call-depth", type=int, default=24,
                    help="max call-chain depth per reachability walk")
    ap.add_argument("--std", default="c++20",
                    help="language standard for files outside the compile db")
    ap.add_argument("--json", metavar="PATH",
                    help="also write findings as JSON ('-' = stdout)")
    ap.add_argument("--explain", metavar="ID",
                    help="print the full cross-function source -> sink "
                    "chain for one finding id (ids are printed next to "
                    "each finding; a unique prefix is enough)")
    ap.add_argument("--sarif", metavar="PATH",
                    help="write NEW findings (post-baseline) as SARIF 2.1.0")
    ap.add_argument("--skip-exit-zero", action="store_true",
                    help="exit 0 instead of 77 on a libclang skip (the "
                    "interactive `--target analyze` wrapper; CTest and CI "
                    "want the real code)")
    args = ap.parse_args(argv)

    strict = os.environ.get("MCI_ANALYZE_STRICT", "") == "1"

    import rules as rules_mod  # clang-free by itself (needs sys.path)

    if args.list_rules:
        for name in sorted(rules_mod.ALL_RULES):
            mod = rules_mod.ALL_RULES[name]
            tag = "" if _requires_clang(mod) else " [no-libclang]"
            print("%-18s %s%s" % (name, mod.DESCRIPTION, tag))
        return engine.EXIT_OK

    cindex, why = engine.load_cindex()

    if args.probe_libclang:
        if cindex is not None:
            print("mci-analyze: libclang available")
            return engine.EXIT_OK
        return _skip("libclang unavailable: %s" % why, strict,
                     args.skip_exit_zero)

    selected = args.rule or sorted(rules_mod.ALL_RULES)
    unknown = [r for r in selected if r not in rules_mod.ALL_RULES]
    if unknown:
        print("mci-analyze: unknown rule(s): %s (see --list-rules)"
              % ", ".join(unknown), file=sys.stderr)
        return engine.EXIT_SETUP_ERROR

    # A run containing any clang-dependent rule keeps the historical skip
    # contract when libclang is missing: partially running and exiting 0
    # would let CI silently lose coverage. Only a selection made up purely
    # of textual rules proceeds without libclang.
    need_clang = any(_requires_clang(rules_mod.ALL_RULES[r])
                     for r in selected)
    if cindex is None and need_clang:
        return _skip("libclang unavailable: %s" % why, strict,
                     args.skip_exit_zero)

    # ---- collect translation units ------------------------------------
    try:
        compdb = engine.load_compile_commands(args.build_dir)
    except OSError:
        compdb = {}
    except ValueError as exc:
        print("mci-analyze: bad compile_commands.json: %s" % exc,
              file=sys.stderr)
        return engine.EXIT_SETUP_ERROR

    ctx = engine.AnalysisContext(cindex, _REPO_ROOT,
                                 call_budget=args.call_budget,
                                 call_depth=args.call_depth)

    if args.paths:
        targets = [os.path.realpath(p) for p in args.paths]
    elif compdb:
        targets = sorted(
            path for path in compdb
            if any(ctx.rel(path).startswith(p) for p in _ALL_PREFIXES)
        )
    elif cindex is None:
        targets = _default_targets(ctx)  # textual rules need no compile db
    else:
        print("mci-analyze: no compile_commands.json under %s and no "
              "explicit paths; run cmake -B build first"
              % args.build_dir, file=sys.stderr)
        return engine.EXIT_SETUP_ERROR

    for path in targets:
        if not os.path.exists(path):
            print("mci-analyze: no such file: %s" % path, file=sys.stderr)
            return engine.EXIT_SETUP_ERROR
    ctx.targets = [ctx.rel(p) for p in targets]

    parsed = 0
    parse_secs = 0.0
    if cindex is not None:
        fallback = engine.default_args(_REPO_ROOT, std=args.std)
        t0 = time.monotonic()
        parsed = _parse_targets(ctx, targets, compdb, fallback,
                                max(1, args.jobs))
        parse_secs = time.monotonic() - t0
        if parsed == 0:
            return _skip("no translation units could be parsed", strict,
                         args.skip_exit_zero)
        for err in ctx.parse_errors:
            print("mci-analyze: note: %s" % err, file=sys.stderr)

    # ---- run rules -----------------------------------------------------
    t0 = time.monotonic()
    findings = []
    for name in selected:
        findings.extend(rules_mod.ALL_RULES[name].check(ctx))
    rule_secs = time.monotonic() - t0
    findings = ctx.suppressions.filter(findings)
    findings.extend(ctx.suppressions.errors)
    findings = engine.dedupe(findings)

    if args.explain:
        # Explain pre-baseline so baselined findings stay addressable.
        return _explain(findings, args.explain)

    if args.json:
        import json as _json

        payload = _json.dumps([f.to_json() for f in findings], indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")

    if args.write_baseline:
        baseline_mod.write(args.baseline, findings)
        print("mci-analyze: wrote %d finding key(s) to %s"
              % (len({f.key() for f in findings}), args.baseline))
        return engine.EXIT_OK

    known = {} if args.no_baseline else baseline_mod.load(args.baseline)
    new, stale = baseline_mod.diff(findings, known)

    if args.sarif:
        import json as _json

        descriptions = {name: rules_mod.ALL_RULES[name].DESCRIPTION
                        for name in rules_mod.ALL_RULES}
        with open(args.sarif, "w", encoding="utf-8") as fh:
            _json.dump(engine.to_sarif(new, descriptions), fh, indent=2)
            fh.write("\n")

    for f in new:
        print(f.render())
        print("    id: %s (--explain %s for the full chain)"
              % (engine.finding_id(f), engine.finding_id(f)))
    baselined = len(findings) - len(new)
    if baselined:
        print("mci-analyze: %d finding(s) suppressed by baseline %s"
              % (baselined, os.path.relpath(args.baseline, _REPO_ROOT)))
    for key in stale:
        print("mci-analyze: note: stale baseline entry (fixed? delete it): %s"
              % key)
    print("mci-analyze: %d TU(s) in %.2fs (jobs=%d), %d rule(s) in %.2fs, "
          "%d new finding(s)"
          % (parsed, parse_secs, max(1, args.jobs), len(selected),
             rule_secs, len(new)))
    return engine.EXIT_FINDINGS if new else engine.EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

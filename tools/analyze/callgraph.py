"""Call-graph construction and budget-bounded reachability.

``CallGraph`` is plain data (testable without libclang); ``CallGraphBuilder``
walks cindex ASTs to populate it. Nodes are functions/methods/lambdas defined
in this repo; edges are direct calls. Virtual dispatch and calls through
std::function are not resolvable statically — rules that need them root the
walk at the concrete overrides / lambda bodies instead.

Reachability is budget-bounded (node and depth caps) so a pathological graph
degrades into "truncated" rather than an analyzer hang; the budget is a CLI
knob (--call-budget / --call-depth).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, List, Optional, Set, Tuple


@dataclasses.dataclass
class CallSite:
    callee_usr: str  # empty when unresolved
    callee_name: str
    file: str  # repo-relative
    line: int
    column: int


@dataclasses.dataclass
class Node:
    usr: str
    name: str  # display name, e.g. "EventQueue::push"
    file: str = ""
    line: int = 0
    end_line: int = 0
    hot: bool = False  # carries the mci::hot annotation
    is_lambda: bool = False
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    # CXX_NEW_EXPR locations inside the body (file, line, column).
    new_exprs: List[Tuple[str, int, int]] = dataclasses.field(
        default_factory=list
    )


@dataclasses.dataclass
class Registration:
    """A call like reactor.addFd(fd, ev, <lambda>) — the lambda becomes a
    reachability root for the reactor-blocking rule."""

    method: str  # addFd / addTimer
    receiver_class: str
    callback_usrs: List[str]  # lambdas passed in the argument list
    file: str
    line: int


@dataclasses.dataclass
class ReachResult:
    reached: Set[str]
    # usr -> (parent usr, via call site) for reconstructing chains
    parent: Dict[str, Tuple[str, CallSite]]
    truncated: bool


class CallGraph:
    def __init__(self) -> None:
        self.nodes: Dict[str, Node] = {}
        self.registrations: List[Registration] = []

    def node(self, usr: str) -> Optional[Node]:
        return self.nodes.get(usr)

    def ensure(self, usr: str, name: str) -> Node:
        n = self.nodes.get(usr)
        if n is None:
            n = Node(usr=usr, name=name)
            self.nodes[usr] = n
        return n

    def reachable(self, roots: List[str], budget: int,
                  max_depth: int) -> ReachResult:
        """BFS over call edges from ``roots``; stays within repo-defined
        nodes (edges to undefined callees terminate there)."""
        reached: Set[str] = set()
        parent: Dict[str, Tuple[str, CallSite]] = {}
        truncated = False
        queue: deque = deque((r, 0) for r in roots if r in self.nodes)
        reached.update(r for r, _ in queue)
        while queue:
            usr, depth = queue.popleft()
            if depth >= max_depth:
                truncated = True
                continue
            node = self.nodes[usr]
            for call in node.calls:
                tgt = call.callee_usr
                if not tgt or tgt not in self.nodes or tgt in reached:
                    continue
                if len(reached) >= budget:
                    truncated = True
                    queue.clear()
                    break
                reached.add(tgt)
                parent[tgt] = (usr, call)
                queue.append((tgt, depth + 1))
        return ReachResult(reached=reached, parent=parent, truncated=truncated)

    def chain(self, result: ReachResult, usr: str, limit: int = 6) -> str:
        """Human-readable root→usr call chain for finding notes."""
        names: List[str] = []
        cur = usr
        while cur in result.parent and len(names) < limit:
            node = self.nodes.get(cur)
            names.append(node.name if node else cur)
            cur = result.parent[cur][0]
        node = self.nodes.get(cur)
        names.append(node.name if node else cur)
        return " <- ".join(names)


# --------------------------------------------------------------------------
# cindex AST -> CallGraph
# --------------------------------------------------------------------------

_FUNCTION_KINDS = None  # initialised per builder (needs the cindex module)

_REGISTRATION_METHODS = {"addFd", "addTimer"}


def _lambda_usr(file: str, line: int, column: int) -> str:
    # Lambdas have no stable USR in libclang; synthesise one from the
    # definition site (stable enough for a single run).
    return "lambda@%s:%d:%d" % (file, line, column)


class CallGraphBuilder:
    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.ci = ctx.cindex
        self.graph = CallGraph()
        ck = self.ci.CursorKind
        self._func_kinds = {
            ck.FUNCTION_DECL,
            ck.CXX_METHOD,
            ck.CONSTRUCTOR,
            ck.DESTRUCTOR,
            ck.CONVERSION_FUNCTION,
            ck.FUNCTION_TEMPLATE,
        }

    # -- public ------------------------------------------------------------

    def add_tu(self, tu) -> None:
        for child in tu.cursor.get_children():
            self._visit_toplevel(child)

    # -- helpers -----------------------------------------------------------

    def _in_repo(self, cursor) -> bool:
        loc = cursor.location
        return bool(loc.file) and self.ctx.in_repo(loc.file.name)

    def _display_name(self, cursor) -> str:
        parts = [cursor.spelling or "<anon>"]
        parent = cursor.semantic_parent
        ck = self.ci.CursorKind
        while parent is not None and parent.kind in (
            ck.CLASS_DECL,
            ck.STRUCT_DECL,
            ck.CLASS_TEMPLATE,
        ):
            parts.append(parent.spelling)
            parent = parent.semantic_parent
        return "::".join(reversed(parts))

    def _visit_toplevel(self, cursor) -> None:
        ck = self.ci.CursorKind
        # Skip declarations that live outside the repo (system headers):
        # their bodies are irrelevant and namespace std is enormous.
        if not self._in_repo(cursor):
            return
        if cursor.kind in (ck.NAMESPACE, ck.CLASS_DECL, ck.STRUCT_DECL,
                           ck.CLASS_TEMPLATE, ck.UNEXPOSED_DECL,
                           ck.LINKAGE_SPEC):
            for child in cursor.get_children():
                self._visit_toplevel(child)
            return
        if cursor.kind in self._func_kinds:
            if not cursor.is_definition():
                # Out-of-line definitions inherit MCI_HOT from the header
                # declaration; record it against the shared USR so the
                # rule sees it whichever TU parsed first.
                self._note_annotations(cursor)
                return
            self._add_function(cursor)

    def _note_annotations(self, cursor) -> None:
        ck = self.ci.CursorKind
        for child in cursor.get_children():
            if child.kind == ck.ANNOTATE_ATTR and \
                    child.spelling == "mci::hot":
                usr = cursor.get_usr()
                if usr:
                    node = self.graph.ensure(usr, self._display_name(cursor))
                    node.hot = True

    def _add_function(self, cursor) -> Node:
        usr = cursor.get_usr() or _lambda_usr(
            *self.ctx.location(cursor)
        )
        node = self.graph.ensure(usr, self._display_name(cursor))
        rel, line, _ = self.ctx.location(cursor)
        node.file, node.line = rel, line
        ext = cursor.extent
        node.end_line = ext.end.line if ext and ext.end else line
        self.ctx.load_suppressions_for(cursor)
        ck = self.ci.CursorKind
        for child in cursor.get_children():
            if child.kind == ck.ANNOTATE_ATTR:
                if child.spelling == "mci::hot":
                    node.hot = True
                continue
            self._visit_body(child, node)
        return node

    def _visit_body(self, cursor, node: Node) -> None:
        ck = self.ci.CursorKind
        if cursor.kind == ck.LAMBDA_EXPR:
            lam = self._add_lambda(cursor)
            # No edge from definer to lambda: defining a callback is not
            # calling it. Rules root walks at the lambda when appropriate.
            _ = lam
            return
        if cursor.kind in self._func_kinds and cursor.is_definition():
            # Local classes / nested definitions: independent nodes.
            self._add_function(cursor)
            return
        if cursor.kind == ck.CXX_NEW_EXPR:
            node.new_exprs.append(self.ctx.location(cursor))
        elif cursor.kind == ck.CALL_EXPR:
            self._record_call(cursor, node)
        for child in cursor.get_children():
            self._visit_body(child, node)

    def _add_lambda(self, cursor) -> Node:
        rel, line, col = self.ctx.location(cursor)
        usr = _lambda_usr(rel, line, col)
        node = self.graph.ensure(usr, "lambda@%s:%d" % (rel, line))
        node.is_lambda = True
        node.file, node.line = rel, line
        ext = cursor.extent
        node.end_line = ext.end.line if ext and ext.end else line
        for child in cursor.get_children():
            self._visit_body(child, node)
        return node

    def _record_call(self, cursor, node: Node) -> None:
        ref = cursor.referenced
        name = ref.spelling if ref is not None and ref.spelling else (
            cursor.spelling or ""
        )
        usr = ref.get_usr() if ref is not None else ""
        rel, line, col = self.ctx.location(cursor)
        node.calls.append(
            CallSite(callee_usr=usr or "", callee_name=name, file=rel,
                     line=line, column=col)
        )
        if name in _REGISTRATION_METHODS and ref is not None:
            parent = ref.semantic_parent
            recv = parent.spelling if parent is not None else ""
            lambdas = self._collect_lambda_args(cursor)
            if lambdas:
                self.graph.registrations.append(
                    Registration(method=name, receiver_class=recv,
                                 callback_usrs=lambdas, file=rel, line=line)
                )

    def _collect_lambda_args(self, call_cursor) -> List[str]:
        ck = self.ci.CursorKind
        out: List[str] = []

        def walk(c):
            if c.kind == ck.LAMBDA_EXPR:
                rel, line, col = self.ctx.location(c)
                out.append(_lambda_usr(rel, line, col))
                return  # nested lambdas belong to the outer lambda's body
            for ch in c.get_children():
                walk(ch)

        for child in call_cursor.get_children():
            walk(child)
        return out

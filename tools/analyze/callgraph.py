"""Call-graph construction and budget-bounded reachability.

``CallGraph`` is plain data (testable without libclang); ``CallGraphBuilder``
walks cindex ASTs to populate it. Nodes are functions/methods/lambdas defined
in this repo; edges are direct calls. Virtual dispatch and calls through
std::function are not resolvable statically — rules that need them root the
walk at the concrete overrides / lambda bodies instead.

Reachability is budget-bounded (node and depth caps) so a pathological graph
degrades into "truncated" rather than an analyzer hang; the budget is a CLI
knob (--call-budget / --call-depth).
"""

from __future__ import annotations

import dataclasses
import re
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

import engine


@dataclasses.dataclass
class CallSite:
    callee_usr: str  # empty when unresolved
    callee_name: str
    file: str  # repo-relative
    line: int
    column: int
    # Source text of the call, recorded only for lifetime-relevant calls
    # (removeFd / cancelTimer / retireOwner) so callback-lifetime can match
    # a deregistration to the handle member it releases.
    text: str = ""


@dataclasses.dataclass
class Node:
    usr: str
    name: str  # display name, e.g. "EventQueue::push"
    file: str = ""
    line: int = 0
    end_line: int = 0
    hot: bool = False  # carries the mci::hot annotation
    is_lambda: bool = False
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    # CXX_NEW_EXPR locations inside the body (file, line, column).
    new_exprs: List[Tuple[str, int, int]] = dataclasses.field(
        default_factory=list
    )


@dataclasses.dataclass
class Registration:
    """A call like reactor.addFd(fd, ev, <lambda>) — the lambda becomes a
    reachability root for the reactor-blocking rule, and the registration
    itself a liability for the callback-lifetime rule."""

    method: str  # addFd / addTimer
    receiver_class: str
    callback_usrs: List[str]  # lambdas passed in the argument list
    file: str
    line: int
    column: int = 0
    # Textual capture list of the first lambda argument ("this", "&x", "=",
    # ...); the lifetime rule keys risk off it.
    captures: Tuple[str, ...] = ()
    # The function containing the registration (usr + display name, e.g.
    # "BroadcastServer::setupSockets") — "" when unresolved.
    enclosing_usr: str = ""
    enclosing_name: str = ""
    # LHS the returned handle is stored into ("link->tcpReg"), textual;
    # "" when the result is discarded.
    handle_text: str = ""
    # Spelling of the OwnerId argument ("owner_"); "" when defaulted.
    owner_arg: str = ""


@dataclasses.dataclass
class ReachResult:
    reached: Set[str]
    # usr -> (parent usr, via call site) for reconstructing chains
    parent: Dict[str, Tuple[str, CallSite]]
    truncated: bool


class CallGraph:
    def __init__(self) -> None:
        self.nodes: Dict[str, Node] = {}
        self.registrations: List[Registration] = []

    def node(self, usr: str) -> Optional[Node]:
        return self.nodes.get(usr)

    def ensure(self, usr: str, name: str) -> Node:
        n = self.nodes.get(usr)
        if n is None:
            n = Node(usr=usr, name=name)
            self.nodes[usr] = n
        return n

    def reachable(self, roots: List[str], budget: int,
                  max_depth: int) -> ReachResult:
        """BFS over call edges from ``roots``; stays within repo-defined
        nodes (edges to undefined callees terminate there)."""
        reached: Set[str] = set()
        parent: Dict[str, Tuple[str, CallSite]] = {}
        truncated = False
        queue: deque = deque((r, 0) for r in roots if r in self.nodes)
        reached.update(r for r, _ in queue)
        while queue:
            usr, depth = queue.popleft()
            if depth >= max_depth:
                truncated = True
                continue
            node = self.nodes[usr]
            for call in node.calls:
                tgt = call.callee_usr
                if not tgt or tgt not in self.nodes or tgt in reached:
                    continue
                if len(reached) >= budget:
                    truncated = True
                    queue.clear()
                    break
                reached.add(tgt)
                parent[tgt] = (usr, call)
                queue.append((tgt, depth + 1))
        return ReachResult(reached=reached, parent=parent, truncated=truncated)

    def chain(self, result: ReachResult, usr: str, limit: int = 6) -> str:
        """Human-readable root→usr call chain for finding notes."""
        names: List[str] = []
        cur = usr
        while cur in result.parent and len(names) < limit:
            node = self.nodes.get(cur)
            names.append(node.name if node else cur)
            cur = result.parent[cur][0]
        node = self.nodes.get(cur)
        names.append(node.name if node else cur)
        return " <- ".join(names)


# --------------------------------------------------------------------------
# cindex AST -> CallGraph
# --------------------------------------------------------------------------

_FUNCTION_KINDS = None  # initialised per builder (needs the cindex module)

_REGISTRATION_METHODS = {"addFd", "addTimer"}

# Calls whose source text matters to callback-lifetime: deregistrations
# and owner retirement, matched back to handle members / owner discipline.
_LIFETIME_CALLS = {"removeFd", "cancelTimer", "retireOwner"}

# LHS of `x = <registration call>`: the last assignable expression before
# the '=' that ends the prefix ("link->tcpReg", "emplaced.first->second.reg").
_HANDLE_LHS_RE = re.compile(
    r"([A-Za-z_](?:[\w.]|->|\[\w*\])*)\s*=\s*$"
)


def _lambda_usr(file: str, line: int, column: int) -> str:
    # Lambdas have no stable USR in libclang; synthesise one from the
    # definition site (stable enough for a single run).
    return "lambda@%s:%d:%d" % (file, line, column)


class CallGraphBuilder:
    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.ci = ctx.cindex
        self.graph = CallGraph()
        ck = self.ci.CursorKind
        self._func_kinds = {
            ck.FUNCTION_DECL,
            ck.CXX_METHOD,
            ck.CONSTRUCTOR,
            ck.DESTRUCTOR,
            ck.CONVERSION_FUNCTION,
            ck.FUNCTION_TEMPLATE,
        }

    # -- public ------------------------------------------------------------

    def add_tu(self, tu) -> None:
        for child in tu.cursor.get_children():
            self._visit_toplevel(child)

    # -- helpers -----------------------------------------------------------

    def _in_repo(self, cursor) -> bool:
        loc = cursor.location
        return bool(loc.file) and self.ctx.in_repo(loc.file.name)

    def _display_name(self, cursor) -> str:
        parts = [cursor.spelling or "<anon>"]
        parent = cursor.semantic_parent
        ck = self.ci.CursorKind
        while parent is not None and parent.kind in (
            ck.CLASS_DECL,
            ck.STRUCT_DECL,
            ck.CLASS_TEMPLATE,
        ):
            parts.append(parent.spelling)
            parent = parent.semantic_parent
        return "::".join(reversed(parts))

    def _visit_toplevel(self, cursor) -> None:
        ck = self.ci.CursorKind
        # Skip declarations that live outside the repo (system headers):
        # their bodies are irrelevant and namespace std is enormous.
        if not self._in_repo(cursor):
            return
        if cursor.kind in (ck.NAMESPACE, ck.CLASS_DECL, ck.STRUCT_DECL,
                           ck.CLASS_TEMPLATE, ck.UNEXPOSED_DECL,
                           ck.LINKAGE_SPEC):
            for child in cursor.get_children():
                self._visit_toplevel(child)
            return
        if cursor.kind in self._func_kinds:
            if not cursor.is_definition():
                # Out-of-line definitions inherit MCI_HOT from the header
                # declaration; record it against the shared USR so the
                # rule sees it whichever TU parsed first.
                self._note_annotations(cursor)
                return
            self._add_function(cursor)

    def _note_annotations(self, cursor) -> None:
        ck = self.ci.CursorKind
        for child in cursor.get_children():
            if child.kind == ck.ANNOTATE_ATTR and \
                    child.spelling == "mci::hot":
                usr = cursor.get_usr()
                if usr:
                    node = self.graph.ensure(usr, self._display_name(cursor))
                    node.hot = True

    def _add_function(self, cursor) -> Node:
        usr = cursor.get_usr() or _lambda_usr(
            *self.ctx.location(cursor)
        )
        node = self.graph.ensure(usr, self._display_name(cursor))
        rel, line, _ = self.ctx.location(cursor)
        node.file, node.line = rel, line
        ext = cursor.extent
        node.end_line = ext.end.line if ext and ext.end else line
        self.ctx.load_suppressions_for(cursor)
        ck = self.ci.CursorKind
        for child in cursor.get_children():
            if child.kind == ck.ANNOTATE_ATTR:
                if child.spelling == "mci::hot":
                    node.hot = True
                continue
            self._visit_body(child, node)
        return node

    def _visit_body(self, cursor, node: Node) -> None:
        ck = self.ci.CursorKind
        if cursor.kind == ck.LAMBDA_EXPR:
            lam = self._add_lambda(cursor)
            # No edge from definer to lambda: defining a callback is not
            # calling it. Rules root walks at the lambda when appropriate.
            _ = lam
            return
        if cursor.kind in self._func_kinds and cursor.is_definition():
            # Local classes / nested definitions: independent nodes.
            self._add_function(cursor)
            return
        if cursor.kind == ck.CXX_NEW_EXPR:
            node.new_exprs.append(self.ctx.location(cursor))
        elif cursor.kind == ck.CALL_EXPR:
            self._record_call(cursor, node)
        for child in cursor.get_children():
            self._visit_body(child, node)

    def _add_lambda(self, cursor) -> Node:
        rel, line, col = self.ctx.location(cursor)
        usr = _lambda_usr(rel, line, col)
        node = self.graph.ensure(usr, "lambda@%s:%d" % (rel, line))
        node.is_lambda = True
        node.file, node.line = rel, line
        ext = cursor.extent
        node.end_line = ext.end.line if ext and ext.end else line
        for child in cursor.get_children():
            self._visit_body(child, node)
        return node

    def _call_text(self, cursor, rel: str, line: int) -> str:
        ext = cursor.extent
        end = ext.end.line if ext and ext.end else line
        return " ".join(self.ctx.extent_text(rel, line, end).split())[:160]

    def _lambda_captures(self, lam_cursor) -> Tuple[str, ...]:
        """The textual capture list of a lambda ("this", "&", "&x", "=").
        Token-based: libclang's capture API is unstable across pins."""
        try:
            toks = [t.spelling for t in lam_cursor.get_tokens()]
        except Exception:
            return ()
        if not toks or toks[0] != "[":
            return ()
        depth = 0
        inner: List[str] = []
        for t in toks:
            if t == "[":
                depth += 1
                if depth == 1:
                    continue
            if t == "]":
                depth -= 1
                if depth == 0:
                    break
            inner.append(t)
        captures: List[str] = []
        cur = ""
        for t in inner:
            if t == ",":
                if cur:
                    captures.append(cur)
                cur = ""
            else:
                cur += t
        if cur:
            captures.append(cur)
        return tuple(captures)

    def _owner_arg_text(self, call_cursor, method: str) -> str:
        # addFd(fd, events, handler, owner) / addTimer(delay, period,
        # handler, owner): the 4th argument is the OwnerId.
        try:
            args = list(call_cursor.get_arguments())
        except Exception:
            return ""
        if len(args) < 4:
            return ""
        try:
            return " ".join(t.spelling for t in args[3].get_tokens())[:40]
        except Exception:
            return ""

    def _handle_lhs(self, call_cursor, rel: str, line: int, col: int) -> str:
        """Textual LHS when the registration's returned handle is stored
        (``x = reactor.addFd(...)``); "" when the result is discarded."""
        text = self.ctx.extent_text(rel, line, line)
        if not text or col < 1:
            return ""
        prefix = text[:col - 1]
        m = _HANDLE_LHS_RE.search(prefix)
        return m.group(1) if m is not None else ""

    def _record_call(self, cursor, node: Node) -> None:
        ref = cursor.referenced
        name = ref.spelling if ref is not None and ref.spelling else (
            cursor.spelling or ""
        )
        usr = ref.get_usr() if ref is not None else ""
        rel, line, col = self.ctx.location(cursor)
        text = ""
        if name in _LIFETIME_CALLS:
            text = self._call_text(cursor, rel, line)
        node.calls.append(
            CallSite(callee_usr=usr or "", callee_name=name, file=rel,
                     line=line, column=col, text=text)
        )
        if name in _REGISTRATION_METHODS and ref is not None:
            parent = ref.semantic_parent
            recv = parent.spelling if parent is not None else ""
            lambdas = self._collect_lambda_args(cursor)
            if lambdas:
                first_lam = self._lambda_cursors[0] \
                    if self._lambda_cursors else None
                self.graph.registrations.append(
                    Registration(
                        method=name, receiver_class=recv,
                        callback_usrs=lambdas, file=rel, line=line,
                        column=col,
                        captures=self._lambda_captures(first_lam)
                        if first_lam is not None else (),
                        enclosing_usr=node.usr,
                        enclosing_name=node.name,
                        handle_text=self._handle_lhs(cursor, rel, line, col),
                        owner_arg=self._owner_arg_text(cursor, name))
                )

    def _collect_lambda_args(self, call_cursor) -> List[str]:
        ck = self.ci.CursorKind
        out: List[str] = []
        self._lambda_cursors = []

        def walk(c):
            if c.kind == ck.LAMBDA_EXPR:
                rel, line, col = self.ctx.location(c)
                out.append(_lambda_usr(rel, line, col))
                self._lambda_cursors.append(c)
                return  # nested lambdas belong to the outer lambda's body
            for ch in c.get_children():
                walk(ch)

        for child in call_cursor.get_children():
            walk(child)
        return out


# --------------------------------------------------------------------------
# cindex AST -> engine.Cfg (the wire-taint statement lowering)
# --------------------------------------------------------------------------

# Names for libclang's BinaryOperator enum (bindings >= 17); the token scan
# below is the fallback for older pins that don't expose opcodes at all.
_BINOP_NAMES = {
    "LT": "<", "GT": ">", "LE": "<=", "GE": ">=", "EQ": "==", "NE": "!=",
    "LAnd": "&&", "LOr": "||", "Assign": "=",
}
_OP_TOKENS = {
    "<", ">", "<=", ">=", "==", "!=", "&&", "||", "=",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
}
_CMP_OPS = {"<", ">", "<=", ">=", "==", "!="}
_CONST_NAME_RE = re.compile(r"^k[A-Z]")


@dataclasses.dataclass
class ExprInfo:
    """What an expression contributes to the taint IR: the access paths it
    reads, whether a taint source appears inside it, and any sinks."""

    paths: Tuple[str, ...] = ()
    has_source: bool = False
    source_desc: str = ""
    sinks: Tuple[engine.Sink, ...] = ()

    def merge(self, other: "ExprInfo") -> "ExprInfo":
        return ExprInfo(
            paths=self.paths + tuple(
                p for p in other.paths if p not in self.paths
            ),
            has_source=self.has_source or other.has_source,
            source_desc=self.source_desc or other.source_desc,
            sinks=self.sinks + other.sinks,
        )


@dataclasses.dataclass
class FunctionCfg:
    name: str
    file: str
    line: int
    cfg: engine.Cfg
    # Parameter names in declaration order — the seeds for per-parameter
    # summary runs (summaries.compute_summary).
    params: Tuple[str, ...] = ()
    # Display name with enclosing classes ("BroadcastServer::onFrame");
    # diagnostics only, summary lookup stays on the simple name.
    qualified: str = ""


class _LoopFrame:
    """Break/continue routing while lowering a loop or switch body."""

    def __init__(self, cont_target: Optional[int]) -> None:
        self.breaks: List[Tuple[int, str]] = []
        self.cont_target = cont_target


class TaintLowering:
    """Lowers one function definition into an engine.Cfg for solve_taint.

    The lowering is deliberately approximate where libclang is weak
    (macro-expanded MCI_CHECKs, FOR_STMT child positions, opcodes on old
    bindings): approximations always degrade toward *keeping* taint, never
    toward inventing sanitization — except the textual MCI_CHECK kill,
    which is what the macro means."""

    def __init__(self, ctx,
                 vocab: engine.TaintVocab = engine.DEFAULT_TAINT_VOCAB) \
            -> None:
        self.ctx = ctx
        self.ci = ctx.cindex
        self.vocab = vocab
        self._check_re = re.compile(
            r"^\s*(?:%s)\s*\(" % "|".join(vocab.check_macros)
        )

    # -- public ------------------------------------------------------------

    def lower(self, func_cursor) -> engine.Cfg:
        self.cfg = engine.Cfg()
        self._sid = 0
        self._pending_calls = []
        ck = self.ci.CursorKind
        body = None
        for child in func_cursor.get_children():
            if child.kind == ck.COMPOUND_STMT:
                body = child
        if body is not None:
            self._lower_stmt(body, None)
        return self.cfg

    # -- statements --------------------------------------------------------

    def _new_sid(self) -> int:
        self._sid += 1
        return self._sid

    def _text(self, cursor) -> str:
        rel, line, _ = self.ctx.location(cursor)
        if not rel:
            return ""
        ext = cursor.extent
        end = ext.end.line if ext and ext.end else line
        text = self.ctx.extent_text(rel, line, end)
        return " ".join(text.split())

    def _add(self, cursor, **kw) -> int:
        rel, line, col = self.ctx.location(cursor)
        # Calls recorded since the previous statement belong to this one:
        # every statement lowering path evaluates its expressions (via
        # _expr, which records CallFacts) immediately before its one _add.
        calls = tuple(self._pending_calls)
        self._pending_calls = []
        stmt = engine.Stmt(sid=self._new_sid(), line=line, column=col,
                           text=self._text(cursor)[:160], calls=calls, **kw)
        self.cfg.add(stmt)
        return stmt.sid

    def _link(self, ends: List[Tuple[int, str]], entry: int) -> None:
        for sid, label in ends:
            self.cfg.edge(sid, entry, label)

    def _seq(self, cursors, frame) -> Tuple[Optional[int],
                                            List[Tuple[int, str]]]:
        entry: Optional[int] = None
        ends: List[Tuple[int, str]] = []
        for c in cursors:
            e, nends = self._lower_stmt(c, frame)
            if e is None:
                continue
            if entry is None:
                entry = e
            else:
                self._link(ends, e)
            ends = nends
        return entry, ends

    def _lower_stmt(self, c, frame) -> Tuple[Optional[int],
                                             List[Tuple[int, str]]]:
        ck = self.ci.CursorKind
        kind = c.kind
        text = self._text(c)
        if self._check_re.match(text):
            # MCI_CHECK(cond) << ...: the process dies unless cond holds, so
            # everything downstream may rely on it. The condition is macro
            # text, not reliable AST — kill textually.
            sid = self._add(c, kills=engine.check_macro_kills(text))
            return sid, [(sid, "")]
        if kind == ck.COMPOUND_STMT:
            return self._seq(c.get_children(), frame)
        if kind == ck.NULL_STMT:
            return None, []
        if kind == ck.DECL_STMT:
            return self._decl_stmt(c)
        if kind == ck.IF_STMT:
            return self._if_stmt(c, frame)
        if kind == ck.WHILE_STMT:
            return self._while_stmt(c, frame)
        if kind == ck.DO_STMT:
            return self._do_stmt(c, frame)
        if kind == ck.FOR_STMT:
            return self._for_stmt(c, frame)
        if kind == ck.CXX_FOR_RANGE_STMT:
            return self._range_for_stmt(c, frame)
        if kind == ck.SWITCH_STMT:
            return self._switch_stmt(c, frame)
        if kind in (ck.CASE_STMT, ck.DEFAULT_STMT, ck.LABEL_STMT):
            kids = list(c.get_children())
            return self._lower_stmt(kids[-1], frame) if kids else (None, [])
        if kind == ck.RETURN_STMT:
            kids = list(c.get_children())
            info = self._expr(kids[0]) if kids else ExprInfo()
            defs = ()
            if kids and (info.paths or info.has_source
                         or self._call_name(kids[0])):
                # The return value is a definition of the synthetic
                # RETURN_PATH; summaries read its taint at exit.
                defs = (engine.Def(
                    path=engine.RETURN_PATH, uses=info.paths,
                    has_source=info.has_source,
                    source_desc=info.source_desc,
                    from_call=self._call_name(kids[0])),)
            sid = self._add(c, uses=info.paths, sinks=info.sinks,
                            defs=defs)
            return sid, []
        if kind == ck.BREAK_STMT:
            sid = self._add(c)
            if frame is not None:
                frame.breaks.append((sid, ""))
            return sid, []
        if kind == ck.CONTINUE_STMT:
            sid = self._add(c)
            if frame is not None and frame.cont_target is not None:
                self.cfg.edge(sid, frame.cont_target, "")
            return sid, []
        # Everything else: one node carrying the statement's defs/sinks.
        return self._expr_stmt(c)

    def _decl_stmt(self, c) -> Tuple[int, List[Tuple[int, str]]]:
        ck = self.ci.CursorKind
        defs: List[engine.Def] = []
        sinks: List[engine.Sink] = []
        for var in c.get_children():
            if var.kind != ck.VAR_DECL:
                continue
            init = None
            for ch in var.get_children():
                if ch.kind not in (ck.TYPE_REF, ck.NAMESPACE_REF,
                                   ck.TEMPLATE_REF, ck.ANNOTATE_ATTR):
                    init = ch
            if init is None:
                continue
            info = self._expr(init)
            sinks.extend(info.sinks)
            from_call = self._call_name(init)
            if info.has_source or info.paths or from_call:
                defs.append(engine.Def(
                    path=var.spelling, uses=info.paths,
                    has_source=info.has_source,
                    source_desc=info.source_desc,
                    from_call=from_call))
            else:
                defs.append(engine.Def(path=var.spelling))
        sid = self._add(c, defs=tuple(defs), sinks=tuple(sinks))
        return sid, [(sid, "")]

    def _expr_stmt(self, c) -> Tuple[Optional[int], List[Tuple[int, str]]]:
        ck = self.ci.CursorKind
        kind = c.kind
        defs: Tuple[engine.Def, ...] = ()
        if kind in (ck.BINARY_OPERATOR, ck.COMPOUND_ASSIGNMENT_OPERATOR):
            op = self._binop(c)
            kids = list(c.get_children())
            if len(kids) == 2 and (op == "=" or op.endswith("=")
                                   and op not in _CMP_OPS):
                lhs_info = self._expr(kids[0])
                rhs_info = self._expr(kids[1])
                lhs = self._peel(kids[0])
                sinks = lhs_info.sinks + rhs_info.sinks
                if lhs.kind in (ck.DECL_REF_EXPR, ck.MEMBER_REF_EXPR) \
                        and lhs_info.paths:
                    uses = rhs_info.paths
                    from_call = ""
                    if kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
                        uses = lhs_info.paths + uses
                    else:
                        from_call = self._call_name(kids[1])
                    defs = (engine.Def(
                        path=lhs_info.paths[0], uses=uses,
                        has_source=rhs_info.has_source,
                        source_desc=rhs_info.source_desc,
                        from_call=from_call),)
                    sid = self._add(c, defs=defs, sinks=sinks)
                    return sid, [(sid, "")]
                # Element / deref store: weak update, no strong def.
                sid = self._add(
                    c, uses=lhs_info.paths + rhs_info.paths, sinks=sinks)
                return sid, [(sid, "")]
        info = self._expr(c)
        sid = self._add(c, uses=info.paths, sinks=info.sinks)
        return sid, [(sid, "")]

    def _cond_node(self, cond, loop: bool):
        ck = self.ci.CursorKind
        if cond.kind == ck.VAR_DECL:  # if (auto x = expr)
            init = None
            for ch in cond.get_children():
                if ch.kind not in (ck.TYPE_REF, ck.NAMESPACE_REF,
                                   ck.TEMPLATE_REF):
                    init = ch
            info = self._expr(init) if init is not None else ExprInfo()
            sid = self._add(cond, defs=(engine.Def(
                path=cond.spelling, uses=info.paths,
                has_source=info.has_source,
                source_desc=info.source_desc),), sinks=info.sinks)
            return sid
        info, guards = self._condition(cond, loop=loop)
        return self._add(cond, uses=info.paths, sinks=info.sinks,
                         guards=tuple(guards))

    def _if_stmt(self, c, frame):
        kids = list(c.get_children())
        if len(kids) < 2:
            return self._expr_stmt(c)
        cond_sid = self._cond_node(kids[0], loop=False)
        then_entry, then_ends = self._lower_stmt(kids[1], frame)
        ends: List[Tuple[int, str]] = list(then_ends)
        if then_entry is not None:
            self.cfg.edge(cond_sid, then_entry, "true")
        else:
            ends.append((cond_sid, "true"))
        if len(kids) >= 3:
            else_entry, else_ends = self._lower_stmt(kids[2], frame)
            if else_entry is not None:
                self.cfg.edge(cond_sid, else_entry, "false")
                ends.extend(else_ends)
            else:
                ends.append((cond_sid, "false"))
        else:
            ends.append((cond_sid, "false"))
        return cond_sid, ends

    def _while_stmt(self, c, frame):
        kids = list(c.get_children())
        if len(kids) < 2:
            return self._expr_stmt(c)
        cond_sid = self._cond_node(kids[0], loop=True)
        inner = _LoopFrame(cont_target=cond_sid)
        body_entry, body_ends = self._lower_stmt(kids[-1], inner)
        if body_entry is not None:
            self.cfg.edge(cond_sid, body_entry, "true")
            self._link(body_ends, cond_sid)
        else:
            self.cfg.edge(cond_sid, cond_sid, "true")
        return cond_sid, [(cond_sid, "false")] + inner.breaks

    def _do_stmt(self, c, frame):
        kids = list(c.get_children())
        if len(kids) < 2:
            return self._expr_stmt(c)
        inner = _LoopFrame(cont_target=None)
        body_entry, body_ends = self._lower_stmt(kids[0], inner)
        cond_sid = self._cond_node(kids[1], loop=True)
        inner.cont_target = cond_sid
        if body_entry is None:
            body_entry = cond_sid
        else:
            self._link(body_ends, cond_sid)
        self.cfg.edge(cond_sid, body_entry, "true")
        return body_entry, [(cond_sid, "false")] + inner.breaks

    def _classify_for_children(self, kids):
        """FOR_STMT children are positional with absent parts simply
        missing; classify init/cond/inc structurally (body is last)."""
        ck = self.ci.CursorKind
        body = kids[-1]
        init = cond = inc = None
        for k in kids[:-1]:
            if k.kind == ck.DECL_STMT:
                init = k
            elif k.kind in (ck.UNARY_OPERATOR,
                            ck.COMPOUND_ASSIGNMENT_OPERATOR):
                inc = k
            elif k.kind == ck.BINARY_OPERATOR and self._binop(k) == "=":
                init = k
            elif cond is None:
                cond = k
            else:
                inc = k
        return init, cond, inc, body

    def _for_stmt(self, c, frame):
        kids = list(c.get_children())
        if not kids:
            return None, []
        init, cond, inc, body = self._classify_for_children(kids)
        init_entry, init_ends = (self._lower_stmt(init, frame)
                                 if init is not None else (None, []))
        if cond is not None:
            cond_sid = self._cond_node(cond, loop=True)
        else:
            cond_sid = self._add(c, text="for(;;)")
        if init_entry is not None:
            self._link(init_ends, cond_sid)
            entry = init_entry
        else:
            entry = cond_sid
        inner = _LoopFrame(cont_target=None)
        body_entry, body_ends = self._lower_stmt(body, inner)
        inc_sid = None
        if inc is not None:
            inc_sid, inc_ends = self._expr_stmt(inc)
            self._link(inc_ends, cond_sid)
        back_target = inc_sid if inc_sid is not None else cond_sid
        inner.cont_target = back_target
        label = "true" if cond is not None else ""
        if body_entry is not None:
            self.cfg.edge(cond_sid, body_entry, label)
            self._link(body_ends, back_target)
        else:
            self.cfg.edge(cond_sid, back_target, label)
        ends = inner.breaks[:]
        if cond is not None:
            ends.append((cond_sid, "false"))
        return entry, ends

    def _range_for_stmt(self, c, frame):
        ck = self.ci.CursorKind
        kids = list(c.get_children())
        if not kids:
            return None, []
        body = kids[-1]
        var = None
        range_info = ExprInfo()
        for k in kids[:-1]:
            if k.kind == ck.VAR_DECL and var is None:
                var = k
                for ch in k.get_children():
                    if ch.kind not in (ck.TYPE_REF, ck.NAMESPACE_REF,
                                       ck.TEMPLATE_REF):
                        range_info = range_info.merge(self._expr(ch))
            else:
                range_info = range_info.merge(self._expr(k))
        defs = ()
        if var is not None:
            defs = (engine.Def(path=var.spelling, uses=range_info.paths,
                               has_source=range_info.has_source,
                               source_desc=range_info.source_desc),)
        head = self._add(c, defs=defs, uses=range_info.paths,
                         sinks=range_info.sinks)
        inner = _LoopFrame(cont_target=head)
        body_entry, body_ends = self._lower_stmt(body, inner)
        if body_entry is not None:
            self.cfg.edge(head, body_entry, "")
            self._link(body_ends, head)
        return head, [(head, "")] + inner.breaks

    def _switch_stmt(self, c, frame):
        kids = list(c.get_children())
        if len(kids) < 2:
            return self._expr_stmt(c)
        info = self._expr(kids[0])
        cond_sid = self._add(c, uses=info.paths, sinks=info.sinks)
        inner = _LoopFrame(cont_target=frame.cont_target
                           if frame is not None else None)
        body_entry, body_ends = self._lower_stmt(kids[1], inner)
        ends = list(body_ends) + inner.breaks + [(cond_sid, "")]
        if body_entry is not None:
            self.cfg.edge(cond_sid, body_entry, "")
        return cond_sid, ends

    # -- operators ---------------------------------------------------------

    def _binop(self, cursor) -> str:
        try:  # libclang >= 17 bindings expose the opcode directly
            op = cursor.binary_operator
            name = getattr(op, "name", "")
            if name and name != "Invalid":
                return _BINOP_NAMES.get(name, name)
        except (AttributeError, ValueError):
            pass
        kids = list(cursor.get_children())
        if len(kids) != 2:
            return ""
        try:
            end = kids[0].extent.end.offset
            for tok in cursor.get_tokens():
                if tok.extent.start.offset >= end \
                        and tok.spelling in _OP_TOKENS:
                    return tok.spelling
        except Exception:
            pass
        return ""

    def _unop(self, cursor) -> str:
        try:
            tok = next(iter(cursor.get_tokens()), None)
            return tok.spelling if tok is not None else ""
        except Exception:
            return ""

    def _peel(self, cursor):
        """Strips parens / implicit casts / explicit casts."""
        ck = self.ci.CursorKind
        transparent = {
            ck.UNEXPOSED_EXPR, ck.PAREN_EXPR, ck.CSTYLE_CAST_EXPR,
            ck.CXX_STATIC_CAST_EXPR, ck.CXX_REINTERPRET_CAST_EXPR,
            ck.CXX_CONST_CAST_EXPR, ck.CXX_FUNCTIONAL_CAST_EXPR,
        }
        while cursor.kind in transparent:
            kids = [k for k in cursor.get_children()
                    if k.kind not in (ck.TYPE_REF, ck.NAMESPACE_REF,
                                      ck.TEMPLATE_REF)]
            if len(kids) != 1:
                return cursor
            cursor = kids[0]
        return cursor

    def _call_name(self, cursor) -> str:
        """Callee name when (peeled) ``cursor`` is exactly one call — the
        only shape where a summary may safely replace the conservative
        intraprocedural approximation of a definition."""
        if cursor is None:
            return ""
        cursor = self._peel(cursor)
        if cursor.kind != self.ci.CursorKind.CALL_EXPR:
            return ""
        ref = cursor.referenced
        return cursor.spelling or (
            ref.spelling if ref is not None else "") or ""

    # -- expressions -------------------------------------------------------

    def _expr(self, cursor) -> ExprInfo:
        if cursor is None:
            return ExprInfo()
        ck = self.ci.CursorKind
        cursor = self._peel(cursor)
        kind = cursor.kind

        if kind == ck.DECL_REF_EXPR:
            ref = cursor.referenced
            name = cursor.spelling
            if not name or _CONST_NAME_RE.match(name):
                return ExprInfo()  # kMax*-style constants are never tainted
            if ref is not None and ref.kind in (
                    ck.ENUM_CONSTANT_DECL, ck.FUNCTION_DECL, ck.CXX_METHOD,
                    ck.FUNCTION_TEMPLATE, ck.NON_TYPE_TEMPLATE_PARAMETER):
                return ExprInfo()
            return ExprInfo(paths=(name,))

        if kind == ck.MEMBER_REF_EXPR:
            ref = cursor.referenced
            kids = [k for k in cursor.get_children()
                    if k.kind not in (ck.TYPE_REF, ck.NAMESPACE_REF,
                                      ck.TEMPLATE_REF)]
            if ref is not None and ref.kind in (ck.CXX_METHOD,
                                                ck.FUNCTION_TEMPLATE):
                # Method reference: contributes the receiver, not a field.
                return self._expr(kids[0]) if kids else ExprInfo()
            if not kids or self._peel(kids[0]).kind == ck.CXX_THIS_EXPR:
                name = cursor.spelling
                return ExprInfo(paths=(name,)) if name else ExprInfo()
            base = self._expr(kids[0])
            name = cursor.spelling
            if base.paths and name:
                paths = tuple(b + "." + name for b in base.paths)
            else:
                paths = base.paths
            return ExprInfo(paths=paths, has_source=base.has_source,
                            source_desc=base.source_desc, sinks=base.sinks)

        if kind == ck.ARRAY_SUBSCRIPT_EXPR:
            kids = list(cursor.get_children())
            base = self._expr(kids[0]) if kids else ExprInfo()
            idx = self._expr(kids[1]) if len(kids) > 1 else ExprInfo()
            sinks = base.sinks + idx.sinks
            if idx.paths or idx.has_source:
                sinks += (engine.Sink(
                    kind="subscript",
                    desc="subscript index %s" % (
                        ", ".join(idx.paths) or "<decoded value>"),
                    paths=idx.paths, direct=idx.has_source
                    and not idx.paths),)
            return ExprInfo(paths=base.paths + idx.paths,
                            has_source=base.has_source or idx.has_source,
                            source_desc=base.source_desc or idx.source_desc,
                            sinks=sinks)

        if kind == ck.CALL_EXPR:
            return self._call(cursor)

        if kind in (ck.UNARY_OPERATOR, ck.CXX_UNARY_EXPR):
            kids = list(cursor.get_children())
            return self._expr(kids[0]) if kids else ExprInfo()

        if kind in (ck.BINARY_OPERATOR, ck.COMPOUND_ASSIGNMENT_OPERATOR,
                    ck.CONDITIONAL_OPERATOR, ck.INIT_LIST_EXPR,
                    ck.CXX_THROW_EXPR, ck.PACK_EXPANSION_EXPR):
            info = ExprInfo()
            for k in cursor.get_children():
                info = info.merge(self._expr(k))
            return info

        if kind in (ck.INTEGER_LITERAL, ck.FLOATING_LITERAL,
                    ck.STRING_LITERAL, ck.CHARACTER_LITERAL,
                    ck.CXX_BOOL_LITERAL_EXPR, ck.CXX_NULL_PTR_LITERAL_EXPR,
                    ck.CXX_THIS_EXPR, ck.LAMBDA_EXPR):
            return ExprInfo()

        # Default: merge children (covers constructor exprs, etc.).
        info = ExprInfo()
        for k in cursor.get_children():
            if k.kind in (ck.TYPE_REF, ck.NAMESPACE_REF, ck.TEMPLATE_REF):
                continue
            info = info.merge(self._expr(k))
        return info

    def _call(self, cursor) -> ExprInfo:
        ck = self.ci.CursorKind
        v = self.vocab
        ref = cursor.referenced
        name = cursor.spelling or (ref.spelling if ref is not None else "")
        kids = list(cursor.get_children())
        args = list(cursor.get_arguments())
        is_member = bool(kids) and kids[0].kind == ck.MEMBER_REF_EXPR

        recv_info = ExprInfo()
        recv_type = ""
        if is_member:
            rkids = [k for k in kids[0].get_children()
                     if k.kind not in (ck.TYPE_REF, ck.NAMESPACE_REF,
                                       ck.TEMPLATE_REF)]
            if rkids:
                recv_info = self._expr(rkids[0])
                try:
                    recv_type = rkids[0].type.spelling or ""
                except Exception:
                    recv_type = ""

        arg_infos = [self._expr(a) for a in args]
        child_sinks: Tuple[engine.Sink, ...] = recv_info.sinks
        for ai in arg_infos:
            child_sinks += ai.sinks

        if name:
            rel, line, col = self.ctx.location(cursor)
            self._pending_calls.append(engine.CallFact(
                callee=name,
                args=tuple((ai.paths, ai.has_source) for ai in arg_infos),
                line=line, column=col))

        def union(infos, extra_sinks=()):
            out = ExprInfo(sinks=tuple(extra_sinks))
            for i in infos:
                out = out.merge(i)
            return out

        if name == "operator[]" and arg_infos:
            idx = arg_infos[-1]
            base = union(arg_infos[:-1] + [recv_info])
            sinks = child_sinks
            if idx.paths or idx.has_source:
                sinks += (engine.Sink(
                    kind="subscript",
                    desc="subscript index %s" % (
                        ", ".join(idx.paths) or "<decoded value>"),
                    paths=idx.paths,
                    direct=idx.has_source and not idx.paths),)
            return ExprInfo(paths=base.paths + idx.paths,
                            has_source=base.has_source or idx.has_source,
                            source_desc=base.source_desc or idx.source_desc,
                            sinks=sinks)

        if name in v.copy_len_fns and len(arg_infos) >= 3:
            ln = arg_infos[2]
            sinks = child_sinks
            if ln.paths or ln.has_source:
                sinks += (engine.Sink(
                    kind="copy-length",
                    desc="%s length %s" % (
                        name, ", ".join(ln.paths) or "<decoded value>"),
                    paths=ln.paths,
                    direct=ln.has_source and not ln.paths),)
            merged = union(arg_infos + [recv_info])
            return ExprInfo(paths=merged.paths, has_source=merged.has_source,
                            source_desc=merged.source_desc, sinks=sinks)

        if is_member and name in v.size_methods:
            merged = union(arg_infos)
            sinks = child_sinks
            if merged.paths or merged.has_source:
                sinks += (engine.Sink(
                    kind="size-arg",
                    desc="%s(%s) size" % (
                        name, ", ".join(merged.paths) or "<decoded value>"),
                    paths=merged.paths,
                    direct=merged.has_source and not merged.paths),)
            return ExprInfo(paths=(), sinks=sinks)

        if name in v.index_call_fns:
            merged = union(arg_infos)
            sinks = child_sinks
            if merged.paths or merged.has_source:
                sinks += (engine.Sink(
                    kind="shard-index",
                    desc="%s(%s) index" % (
                        name, ", ".join(merged.paths) or "<decoded value>"),
                    paths=merged.paths,
                    direct=merged.has_source and not merged.paths),)
            merged = union(arg_infos + [recv_info])
            return ExprInfo(paths=merged.paths, has_source=merged.has_source,
                            source_desc=merged.source_desc, sinks=sinks)

        if name in v.clamp_fns and arg_infos:
            # std::min(x, bound): clamped iff some operand is a constant or
            # otherwise untainted-by-construction expression.
            if any(not ai.paths and not ai.has_source for ai in arg_infos):
                return ExprInfo(sinks=child_sinks)
            return union(arg_infos, child_sinks)

        if name in v.guard_fns:
            return ExprInfo(sinks=child_sinks)  # bool predicate, untainted

        if name in v.source_methods and is_member:
            hint = v.source_receiver_hint.lower()
            if not recv_type or hint in recv_type.lower():
                return ExprInfo(
                    has_source=True,
                    source_desc="%s::%s" % (v.source_receiver_hint, name),
                    sinks=child_sinks)

        if any(name.startswith(p) for p in v.source_prefixes):
            merged = union(arg_infos + [recv_info])
            return ExprInfo(paths=merged.paths, has_source=True,
                            source_desc="%s()" % name, sinks=child_sinks)

        merged = union(arg_infos + [recv_info])
        return ExprInfo(paths=merged.paths, has_source=merged.has_source,
                        source_desc=merged.source_desc, sinks=child_sinks)

    # -- conditions --------------------------------------------------------

    def _condition(self, cursor, loop: bool) \
            -> Tuple[ExprInfo, List[engine.Guard]]:
        ck = self.ci.CursorKind
        cursor = self._peel(cursor)
        kind = cursor.kind

        if kind == ck.UNARY_OPERATOR and self._unop(cursor) == "!":
            kids = list(cursor.get_children())
            if kids:
                info, guards = self._condition(kids[0], loop=loop)
                flipped = [dataclasses.replace(
                    g, edge="false" if g.edge == "true" else "true")
                    for g in guards]
                return info, flipped
            return ExprInfo(), []

        if kind == ck.BINARY_OPERATOR:
            op = self._binop(cursor)
            kids = list(cursor.get_children())
            if len(kids) == 2 and op in ("&&", "||"):
                li, lg = self._condition(kids[0], loop=loop)
                ri, rg = self._condition(kids[1], loop=loop)
                keep = "true" if op == "&&" else "false"
                # On the kept edge both operands' outcomes are known; on the
                # other edge either operand may be responsible — keep nothing.
                guards = [g for g in lg + rg if g.edge == keep]
                return li.merge(ri), guards
            if len(kids) == 2 and op in _CMP_OPS:
                li = self._expr(kids[0])
                ri = self._expr(kids[1])
                info = li.merge(ri)
                guards: List[engine.Guard] = []

                def bounded(side, bound, edge):
                    if side.paths:
                        guards.append(engine.Guard(
                            kills=side.paths, edge=edge,
                            bound_paths=bound.paths))

                if op in ("<", "<="):
                    bounded(li, ri, "true")   # a < b  => a bounded by b
                    bounded(ri, li, "false")  # !(a<b) => b <= a
                elif op in (">", ">="):
                    bounded(ri, li, "true")
                    bounded(li, ri, "false")
                elif op == "==":
                    bounded(li, ri, "true")
                    bounded(ri, li, "true")
                elif op == "!=":
                    bounded(li, ri, "false")
                    bounded(ri, li, "false")
                if loop:
                    # The bound side of a loop comparison is a trip count:
                    # tainted iteration counts are the classic decode DoS.
                    bound = ri if op in ("<", "<=") else (
                        li if op in (">", ">=") else None)
                    if bound is not None and (bound.paths
                                              or bound.has_source):
                        info = ExprInfo(
                            paths=info.paths, has_source=info.has_source,
                            source_desc=info.source_desc,
                            sinks=info.sinks + (engine.Sink(
                                kind="loop-bound",
                                desc="loop bound %s" % (
                                    ", ".join(bound.paths)
                                    or "<decoded value>"),
                                paths=bound.paths,
                                direct=bound.has_source
                                and not bound.paths),))
                return info, guards
            info = self._expr(cursor)
            return info, []

        if kind == ck.CALL_EXPR:
            name = cursor.spelling
            if name in self.vocab.guard_fns:
                args = list(cursor.get_arguments())
                if args:
                    first = self._expr(args[0])
                    info = self._expr(cursor)
                    if first.paths:
                        return info, [engine.Guard(kills=first.paths,
                                                   edge="true")]
                    return info, []
            info = self._expr(cursor)
            return info, []

        info = self._expr(cursor)
        return info, []


def lower_functions(ctx, scope_check,
                    vocab: engine.TaintVocab = engine.DEFAULT_TAINT_VOCAB) \
        -> List[FunctionCfg]:
    """Lowers every repo function definition whose file satisfies
    ``scope_check(rel)`` across all parsed TUs, deduped by definition site."""
    ci = ctx.cindex
    ck = ci.CursorKind
    func_kinds = {
        ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR, ck.DESTRUCTOR,
        ck.CONVERSION_FUNCTION, ck.FUNCTION_TEMPLATE,
    }
    lowering = TaintLowering(ctx, vocab)
    out: List[FunctionCfg] = []
    seen: Set[Tuple[str, int, str]] = set()

    def qualified_name(cursor) -> str:
        parts = [cursor.spelling or "<anon>"]
        parent = cursor.semantic_parent
        while parent is not None and parent.kind in (
                ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE):
            parts.append(parent.spelling)
            parent = parent.semantic_parent
        return "::".join(reversed(parts))

    def param_names(cursor) -> Tuple[str, ...]:
        names = [a.spelling for a in cursor.get_arguments() if a.spelling]
        if not names:  # function templates don't expose get_arguments
            names = [c.spelling for c in cursor.get_children()
                     if c.kind == ck.PARM_DECL and c.spelling]
        return tuple(names)

    def visit(cursor):
        loc = cursor.location
        if loc.file is not None and not ctx.in_repo(loc.file.name):
            return
        if cursor.kind in func_kinds and cursor.is_definition():
            rel, line, _ = ctx.location(cursor)
            if rel and scope_check(rel):
                key = (rel, line, cursor.spelling)
                if key not in seen:
                    seen.add(key)
                    ctx.load_suppressions_for(cursor)
                    out.append(FunctionCfg(
                        name=cursor.spelling, file=rel, line=line,
                        cfg=lowering.lower(cursor),
                        params=param_names(cursor),
                        qualified=qualified_name(cursor)))
        for child in cursor.get_children():
            visit(child)

    for _, tu in ctx.tus:
        for child in tu.cursor.get_children():
            visit(child)
    return out

"""Shared infrastructure for the mci-analyze rule engine.

This module owns everything the rules have in common:

  * locating libclang (the graceful-skip contract from run_clang_tidy.sh:
    a missing toolchain is a notice, not a failure, unless
    MCI_ANALYZE_STRICT=1),
  * loading compile_commands.json and normalising its argv lines into
    something clang can re-parse,
  * the ``// MCI-ANALYZE-ALLOW(rule): reason`` suppression syntax,
  * the Finding record and its baseline key (deliberately line-free so a
    reformat does not invalidate the checked-in baseline).

Everything here except ``ClangLoader`` is pure Python with no libclang
dependency, so the framework itself stays unit-testable on machines where
only the rules must skip.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import shlex
import sys
from typing import Dict, List, Optional, Tuple

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_SETUP_ERROR = 2
EXIT_SKIPPED = 77  # CTest SKIP_RETURN_CODE; same convention as GNU automake.


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Finding:
    """One rule violation at one source location.

    ``message`` must be stable across unrelated edits (no line numbers, no
    absolute paths) because it participates in the baseline key. Location
    detail that may drift belongs in ``detail`` instead.
    """

    rule: str
    file: str  # repo-relative, posix separators
    line: int
    column: int
    message: str
    symbol: str = ""  # enclosing function, when known
    detail: str = ""  # e.g. the call chain that made something reachable

    def key(self) -> str:
        """Line-number-free identity used for baseline diffing."""
        return "|".join((self.rule, self.file, self.symbol, self.message))

    def render(self) -> str:
        loc = "%s:%d:%d" % (self.file, self.line, self.column)
        sym = (" [in %s]" % self.symbol) if self.symbol else ""
        out = "%s: %s: %s%s" % (loc, self.rule, self.message, sym)
        if self.detail:
            out += "\n    note: %s" % self.detail
        return out

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


def dedupe(findings: List[Finding]) -> List[Finding]:
    """Collapses duplicates produced by the same header parsed in many TUs."""
    seen = set()
    out = []
    for f in sorted(findings, key=lambda f: (f.file, f.line, f.column, f.rule)):
        ident = (f.rule, f.file, f.line, f.column, f.message)
        if ident in seen:
            continue
        seen.add(ident)
        out.append(f)
    return out


# --------------------------------------------------------------------------
# Suppressions: // MCI-ANALYZE-ALLOW(rule): reason
# --------------------------------------------------------------------------

# A suppression must carry a reason, same contract as NOLINT-DETERMINISM in
# lint_determinism.py: an unexplained allow is itself a finding.
_ALLOW_RE = re.compile(
    r"//\s*MCI-ANALYZE-ALLOW\(([A-Za-z0-9_,\-\* ]+)\)\s*(?::\s*(\S.*))?$"
)


class Suppressions:
    """Per-file index of MCI-ANALYZE-ALLOW comments.

    An allow on line N suppresses matching findings on line N and line N+1
    (i.e. it may sit on the offending line or on its own line above). The
    rule list is comma-separated; ``*`` matches every rule.
    """

    def __init__(self) -> None:
        # file -> line -> set of rule names allowed there
        self._by_file: Dict[str, Dict[int, set]] = {}
        self._loaded: set = set()
        self.errors: List[Finding] = []

    def load_file(self, path: str, rel: str) -> None:
        if rel in self._loaded:
            return
        self._loaded.add(rel)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                lines = fh.readlines()
        except OSError:
            return
        table = self._by_file.setdefault(rel, {})
        for lineno, text in enumerate(lines, start=1):
            m = _ALLOW_RE.search(text)
            if not m:
                if "MCI-ANALYZE-ALLOW" in text:
                    self.errors.append(
                        Finding(
                            rule="suppression-syntax",
                            file=rel,
                            line=lineno,
                            column=1,
                            message="malformed MCI-ANALYZE-ALLOW comment "
                            "(expected '// MCI-ANALYZE-ALLOW(rule): reason')",
                        )
                    )
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            reason = m.group(2)
            if not reason:
                self.errors.append(
                    Finding(
                        rule="suppression-syntax",
                        file=rel,
                        line=lineno,
                        column=1,
                        message="MCI-ANALYZE-ALLOW without a reason",
                    )
                )
                continue
            table.setdefault(lineno, set()).update(rules)

    def is_allowed(self, rule: str, rel: str, line: int) -> bool:
        table = self._by_file.get(rel)
        if not table:
            return False
        for probe in (line, line - 1):
            rules = table.get(probe)
            if rules and (rule in rules or "*" in rules):
                return True
        return False

    def filter(self, findings: List[Finding]) -> List[Finding]:
        return [
            f
            for f in findings
            if not self.is_allowed(f.rule, f.file, f.line)
        ]


# --------------------------------------------------------------------------
# compile_commands.json
# --------------------------------------------------------------------------

# Flags that make no sense when re-parsing through libclang (dependency
# emission, output files) or that gcc accepts and clang rejects.
_STRIP_WITH_ARG = {"-o", "-MF", "-MT", "-MQ", "-Xclang", "--output"}
_STRIP_BARE = {"-c", "-MD", "-MMD", "-MP", "-g", "-g3"}
_STRIP_PREFIX = ("-fconcepts-diagnostics-depth",)

_EXTRA_ARGS = [
    # The compile db was usually produced by gcc; silence clang-only gripes.
    "-Wno-unknown-warning-option",
    "-Wno-unused-command-line-argument",
]


def normalize_command(entry: dict) -> List[str]:
    """Turns one compile_commands entry into libclang-ready args (no
    compiler argv[0], no input file, no output flags)."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    src = entry.get("file", "")
    args: List[str] = []
    skip_next = False
    for i, tok in enumerate(argv):
        if i == 0:
            continue  # the compiler itself
        if skip_next:
            skip_next = False
            continue
        if tok in _STRIP_WITH_ARG:
            skip_next = True
            continue
        if tok in _STRIP_BARE:
            continue
        if any(tok.startswith(p) for p in _STRIP_PREFIX):
            continue
        if tok == src or os.path.basename(tok) == os.path.basename(src) and (
            tok.endswith(".cpp") or tok.endswith(".cc") or tok.endswith(".c")
        ):
            continue
        args.append(tok)
    return args + _EXTRA_ARGS


def load_compile_commands(build_dir: str) -> Dict[str, List[str]]:
    """Returns {absolute source path: normalized clang args}."""
    path = os.path.join(build_dir, "compile_commands.json")
    with open(path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    out: Dict[str, List[str]] = {}
    for entry in entries:
        src = entry.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", ""), src)
        out[os.path.normpath(src)] = normalize_command(entry)
    return out


def default_args(repo_root: str, std: str = "c++20") -> List[str]:
    """Fallback args for files missing from the compile db (headers,
    fixtures)."""
    return [
        "-x",
        "c++",
        "-std=" + std,
        "-I",
        os.path.join(repo_root, "src"),
    ] + _EXTRA_ARGS


# --------------------------------------------------------------------------
# libclang loading (the graceful-skip contract)
# --------------------------------------------------------------------------


def load_cindex() -> Tuple[Optional[object], str]:
    """Tries to import clang.cindex and create an Index.

    Returns (module, "") on success or (None, reason). Honour the reason:
    the caller decides between exit 77 (skip) and exit 2 (strict CI).
    """
    try:
        import clang.cindex as cindex  # type: ignore
    except ImportError:
        return None, "python bindings not installed (pip install libclang)"

    override = os.environ.get("MCI_LIBCLANG")
    if override:
        try:
            cindex.Config.set_library_file(override)
        except Exception as exc:  # pragma: no cover - config misuse
            return None, "MCI_LIBCLANG rejected: %s" % exc
    try:
        cindex.Index.create()
        return cindex, ""
    except Exception as first_err:
        # The pip 'libclang' wheel bundles its own shared object and finds it
        # unaided; a distro python3-clang package may need the system lib.
        import ctypes.util

        lib = ctypes.util.find_library("clang")
        if lib:
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(lib)
                cindex.Index.create()
                return cindex, ""
            except Exception:
                pass
        return None, "libclang shared library not loadable (%s)" % first_err


# --------------------------------------------------------------------------
# Analysis context handed to every rule
# --------------------------------------------------------------------------


class AnalysisContext:
    """Parsed TUs plus the shared helpers rules need.

    Rules receive exactly one of these per run; expensive artifacts (the
    call graph) are built lazily on first use and shared between rules.
    """

    def __init__(self, cindex, repo_root: str, call_budget: int,
                 call_depth: int) -> None:
        self.cindex = cindex
        self.repo_root = os.path.realpath(repo_root)
        self.call_budget = call_budget
        self.call_depth = call_depth
        self.tus: List[Tuple[str, object]] = []  # (abs path, TranslationUnit)
        self.suppressions = Suppressions()
        self.parse_errors: List[str] = []
        self._graph = None
        self._file_cache: Dict[str, List[str]] = {}

    # -- paths -------------------------------------------------------------

    def rel(self, path: str) -> str:
        real = os.path.realpath(path)
        if real.startswith(self.repo_root + os.sep):
            real = real[len(self.repo_root) + 1:]
        return real.replace(os.sep, "/")

    def in_repo(self, path: Optional[str]) -> bool:
        if not path:
            return False
        return os.path.realpath(path).startswith(self.repo_root + os.sep)

    def file_lines(self, path: str) -> List[str]:
        rel = self.rel(path)
        if rel not in self._file_cache:
            try:
                with open(os.path.join(self.repo_root, rel), "r",
                          encoding="utf-8", errors="replace") as fh:
                    self._file_cache[rel] = fh.readlines()
            except OSError:
                self._file_cache[rel] = []
        return self._file_cache[rel]

    def extent_text(self, rel: str, start_line: int, end_line: int) -> str:
        lines = self.file_lines(os.path.join(self.repo_root, rel))
        return "".join(lines[max(0, start_line - 1):end_line])

    # -- parsing -----------------------------------------------------------

    def parse(self, path: str, args: List[str]) -> bool:
        try:
            index = self.cindex.Index.create()
            tu = index.parse(os.path.realpath(path), args=args)
        except Exception as exc:
            self.parse_errors.append("%s: %s" % (path, exc))
            return False
        fatal = [
            d for d in tu.diagnostics
            if d.severity >= self.cindex.Diagnostic.Error
        ]
        if fatal:
            # Record but keep the TU: rules still work on a partial AST, and
            # failing hard here would make every new compiler flag a flake.
            self.parse_errors.append(
                "%s: %d parse error(s), first: %s"
                % (path, len(fatal), fatal[0].spelling)
            )
        self.tus.append((os.path.realpath(path), tu))
        self.suppressions.load_file(path, self.rel(path))
        return True

    # -- cursor helpers ----------------------------------------------------

    def location(self, cursor) -> Tuple[str, int, int]:
        loc = cursor.location
        fname = loc.file.name if loc.file else ""
        return self.rel(fname) if fname else "", loc.line, loc.column

    def load_suppressions_for(self, cursor) -> None:
        loc = cursor.location
        if loc.file and self.in_repo(loc.file.name):
            self.suppressions.load_file(loc.file.name, self.rel(loc.file.name))

    # -- call graph --------------------------------------------------------

    def callgraph(self):
        if self._graph is None:
            import callgraph as cg

            builder = cg.CallGraphBuilder(self)
            for _, tu in self.tus:
                builder.add_tu(tu)
            self._graph = builder.graph
        return self._graph

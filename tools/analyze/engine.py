"""Shared infrastructure for the mci-analyze rule engine.

This module owns everything the rules have in common:

  * locating libclang (the graceful-skip contract from run_clang_tidy.sh:
    a missing toolchain is a notice, not a failure, unless
    MCI_ANALYZE_STRICT=1),
  * loading compile_commands.json and normalising its argv lines into
    something clang can re-parse,
  * the ``// MCI-ANALYZE-ALLOW(rule): reason`` suppression syntax,
  * the Finding record and its baseline key (deliberately line-free so a
    reformat does not invalidate the checked-in baseline).

Everything here except ``ClangLoader`` is pure Python with no libclang
dependency, so the framework itself stays unit-testable on machines where
only the rules must skip.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import shlex
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_SETUP_ERROR = 2
EXIT_SKIPPED = 77  # CTest SKIP_RETURN_CODE; same convention as GNU automake.


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Finding:
    """One rule violation at one source location.

    ``message`` must be stable across unrelated edits (no line numbers, no
    absolute paths) because it participates in the baseline key. Location
    detail that may drift belongs in ``detail`` instead.
    """

    rule: str
    file: str  # repo-relative, posix separators
    line: int
    column: int
    message: str
    symbol: str = ""  # enclosing function, when known
    detail: str = ""  # e.g. the call chain that made something reachable
    # Cross-function steps behind the finding, source first:
    # {"file": ..., "line": ..., "message": ...}. Rendered as SARIF
    # relatedLocations; not part of the baseline key.
    related: List[dict] = dataclasses.field(default_factory=list)

    def key(self) -> str:
        """Line-number-free identity used for baseline diffing."""
        return "|".join((self.rule, self.file, self.symbol, self.message))

    def render(self) -> str:
        loc = "%s:%d:%d" % (self.file, self.line, self.column)
        sym = (" [in %s]" % self.symbol) if self.symbol else ""
        out = "%s: %s: %s%s" % (loc, self.rule, self.message, sym)
        if self.detail:
            out += "\n    note: %s" % self.detail
        return out

    def to_json(self) -> dict:
        d = dataclasses.asdict(self)
        d["id"] = finding_id(self)
        return d


def finding_id(f: Finding) -> str:
    """Short stable id for --explain: a hash of the baseline key, so it
    survives line drift exactly as long as the baseline entry would."""
    return hashlib.sha1(f.key().encode("utf-8")).hexdigest()[:12]


def dedupe(findings: List[Finding]) -> List[Finding]:
    """Collapses duplicates produced by the same header parsed in many TUs."""
    seen = set()
    out = []
    for f in sorted(findings, key=lambda f: (f.file, f.line, f.column, f.rule)):
        ident = (f.rule, f.file, f.line, f.column, f.message)
        if ident in seen:
            continue
        seen.add(ident)
        out.append(f)
    return out


# --------------------------------------------------------------------------
# Suppressions: // MCI-ANALYZE-ALLOW(rule): reason
# --------------------------------------------------------------------------

# A suppression must carry a reason, same contract as NOLINT-DETERMINISM in
# lint_determinism.py: an unexplained allow is itself a finding.
_ALLOW_RE = re.compile(
    r"//\s*MCI-ANALYZE-ALLOW\(([A-Za-z0-9_,\-\* ]+)\)\s*(?::\s*(\S.*))?$"
)


class Suppressions:
    """Per-file index of MCI-ANALYZE-ALLOW comments.

    An allow on line N suppresses matching findings on line N and line N+1
    (i.e. it may sit on the offending line or on its own line above). The
    rule list is comma-separated; ``*`` matches every rule.
    """

    def __init__(self) -> None:
        # file -> line -> set of rule names allowed there
        self._by_file: Dict[str, Dict[int, set]] = {}
        self._loaded: set = set()
        self.errors: List[Finding] = []

    def load_file(self, path: str, rel: str) -> None:
        if rel in self._loaded:
            return
        self._loaded.add(rel)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                lines = fh.readlines()
        except OSError:
            return
        table = self._by_file.setdefault(rel, {})
        for lineno, text in enumerate(lines, start=1):
            m = _ALLOW_RE.search(text)
            if not m:
                if "MCI-ANALYZE-ALLOW" in text:
                    self.errors.append(
                        Finding(
                            rule="suppression-syntax",
                            file=rel,
                            line=lineno,
                            column=1,
                            message="malformed MCI-ANALYZE-ALLOW comment "
                            "(expected '// MCI-ANALYZE-ALLOW(rule): reason')",
                        )
                    )
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            reason = m.group(2)
            if not reason:
                self.errors.append(
                    Finding(
                        rule="suppression-syntax",
                        file=rel,
                        line=lineno,
                        column=1,
                        message="MCI-ANALYZE-ALLOW without a reason",
                    )
                )
                continue
            table.setdefault(lineno, set()).update(rules)

    def is_allowed(self, rule: str, rel: str, line: int) -> bool:
        table = self._by_file.get(rel)
        if not table:
            return False
        for probe in (line, line - 1):
            rules = table.get(probe)
            if rules and (rule in rules or "*" in rules):
                return True
        return False

    def filter(self, findings: List[Finding]) -> List[Finding]:
        return [
            f
            for f in findings
            if not self.is_allowed(f.rule, f.file, f.line)
        ]


# --------------------------------------------------------------------------
# compile_commands.json
# --------------------------------------------------------------------------

# Flags that make no sense when re-parsing through libclang (dependency
# emission, output files) or that gcc accepts and clang rejects.
_STRIP_WITH_ARG = {"-o", "-MF", "-MT", "-MQ", "-Xclang", "--output"}
_STRIP_BARE = {"-c", "-MD", "-MMD", "-MP", "-g", "-g3"}
_STRIP_PREFIX = ("-fconcepts-diagnostics-depth",)

_EXTRA_ARGS = [
    # The compile db was usually produced by gcc; silence clang-only gripes.
    "-Wno-unknown-warning-option",
    "-Wno-unused-command-line-argument",
]


def normalize_command(entry: dict) -> List[str]:
    """Turns one compile_commands entry into libclang-ready args (no
    compiler argv[0], no input file, no output flags)."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    src = entry.get("file", "")
    args: List[str] = []
    skip_next = False
    for i, tok in enumerate(argv):
        if i == 0:
            continue  # the compiler itself
        if skip_next:
            skip_next = False
            continue
        if tok in _STRIP_WITH_ARG:
            skip_next = True
            continue
        if tok in _STRIP_BARE:
            continue
        if any(tok.startswith(p) for p in _STRIP_PREFIX):
            continue
        if tok == src or os.path.basename(tok) == os.path.basename(src) and (
            tok.endswith(".cpp") or tok.endswith(".cc") or tok.endswith(".c")
        ):
            continue
        args.append(tok)
    return args + _EXTRA_ARGS


def load_compile_commands(build_dir: str) -> Dict[str, List[str]]:
    """Returns {absolute source path: normalized clang args}."""
    path = os.path.join(build_dir, "compile_commands.json")
    with open(path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    out: Dict[str, List[str]] = {}
    for entry in entries:
        src = entry.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", ""), src)
        out[os.path.normpath(src)] = normalize_command(entry)
    return out


def default_args(repo_root: str, std: str = "c++20") -> List[str]:
    """Fallback args for files missing from the compile db (headers,
    fixtures)."""
    return [
        "-x",
        "c++",
        "-std=" + std,
        "-I",
        os.path.join(repo_root, "src"),
    ] + _EXTRA_ARGS


# --------------------------------------------------------------------------
# libclang loading (the graceful-skip contract)
# --------------------------------------------------------------------------


def load_cindex() -> Tuple[Optional[object], str]:
    """Tries to import clang.cindex and create an Index.

    Returns (module, "") on success or (None, reason). Honour the reason:
    the caller decides between exit 77 (skip) and exit 2 (strict CI).
    """
    try:
        import clang.cindex as cindex  # type: ignore
    except ImportError:
        return None, "python bindings not installed (pip install libclang)"

    override = os.environ.get("MCI_LIBCLANG")
    if override:
        try:
            cindex.Config.set_library_file(override)
        except Exception as exc:  # pragma: no cover - config misuse
            return None, "MCI_LIBCLANG rejected: %s" % exc
    try:
        cindex.Index.create()
        return cindex, ""
    except Exception as first_err:
        # The pip 'libclang' wheel bundles its own shared object and finds it
        # unaided; a distro python3-clang package may need the system lib.
        import ctypes.util

        lib = ctypes.util.find_library("clang")
        if lib:
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(lib)
                cindex.Index.create()
                return cindex, ""
            except Exception:
                pass
        return None, "libclang shared library not loadable (%s)" % first_err


# --------------------------------------------------------------------------
# Analysis context handed to every rule
# --------------------------------------------------------------------------


class AnalysisContext:
    """Parsed TUs plus the shared helpers rules need.

    Rules receive exactly one of these per run; expensive artifacts (the
    call graph) are built lazily on first use and shared between rules.
    """

    def __init__(self, cindex, repo_root: str, call_budget: int,
                 call_depth: int) -> None:
        self.cindex = cindex
        self.repo_root = os.path.realpath(repo_root)
        self.call_budget = call_budget
        self.call_depth = call_depth
        self.tus: List[Tuple[str, object]] = []  # (abs path, TranslationUnit)
        self.suppressions = Suppressions()
        self.parse_errors: List[str] = []
        self._graph = None
        self._file_cache: Dict[str, List[str]] = {}

    # -- paths -------------------------------------------------------------

    def rel(self, path: str) -> str:
        real = os.path.realpath(path)
        if real.startswith(self.repo_root + os.sep):
            real = real[len(self.repo_root) + 1:]
        return real.replace(os.sep, "/")

    def in_repo(self, path: Optional[str]) -> bool:
        if not path:
            return False
        return os.path.realpath(path).startswith(self.repo_root + os.sep)

    def file_lines(self, path: str) -> List[str]:
        rel = self.rel(path)
        if rel not in self._file_cache:
            try:
                with open(os.path.join(self.repo_root, rel), "r",
                          encoding="utf-8", errors="replace") as fh:
                    self._file_cache[rel] = fh.readlines()
            except OSError:
                self._file_cache[rel] = []
        return self._file_cache[rel]

    def extent_text(self, rel: str, start_line: int, end_line: int) -> str:
        lines = self.file_lines(os.path.join(self.repo_root, rel))
        return "".join(lines[max(0, start_line - 1):end_line])

    # -- parsing -----------------------------------------------------------

    def parse_detached(self, path: str, args: List[str]):
        """Parses one TU without touching shared state: returns
        (tu-or-None, error-or-empty). Safe to call from worker threads
        (libclang releases the GIL; each call gets its own Index) — the
        caller commits results in a deterministic order afterwards."""
        try:
            index = self.cindex.Index.create()
            tu = index.parse(os.path.realpath(path), args=args)
        except Exception as exc:
            return None, "%s: %s" % (path, exc)
        fatal = [
            d for d in tu.diagnostics
            if d.severity >= self.cindex.Diagnostic.Error
        ]
        if fatal:
            # Report but keep the TU: rules still work on a partial AST, and
            # failing hard here would make every new compiler flag a flake.
            return tu, "%s: %d parse error(s), first: %s" % (
                path, len(fatal), fatal[0].spelling)
        return tu, ""

    def commit_tu(self, path: str, tu, err: str) -> bool:
        if err:
            self.parse_errors.append(err)
        if tu is None:
            return False
        self.tus.append((os.path.realpath(path), tu))
        self.suppressions.load_file(path, self.rel(path))
        return True

    def parse(self, path: str, args: List[str]) -> bool:
        tu, err = self.parse_detached(path, args)
        return self.commit_tu(path, tu, err)

    # -- cursor helpers ----------------------------------------------------

    def location(self, cursor) -> Tuple[str, int, int]:
        loc = cursor.location
        fname = loc.file.name if loc.file else ""
        return self.rel(fname) if fname else "", loc.line, loc.column

    def load_suppressions_for(self, cursor) -> None:
        loc = cursor.location
        if loc.file and self.in_repo(loc.file.name):
            self.suppressions.load_file(loc.file.name, self.rel(loc.file.name))

    # -- call graph --------------------------------------------------------

    def callgraph(self):
        if self._graph is None:
            import callgraph as cg

            builder = cg.CallGraphBuilder(self)
            for _, tu in self.tus:
                builder.add_tu(tu)
            self._graph = builder.graph
        return self._graph


# --------------------------------------------------------------------------
# Dataflow layer: statement IR, CFG, def-use chains, and the taint solver
#
# Everything below is pure Python over a neutral statement IR, so the
# flow-sensitive machinery is unit-testable without libclang
# (tests/analyze/test_dataflow_units.py). callgraph.TaintLowering is the
# libclang front-end that lowers a function body into this IR.
# --------------------------------------------------------------------------


def paths_alias(a: str, b: str) -> bool:
    """True when two access paths may name the same storage: exact match,
    or one is a field extension of the other (``m`` vs ``m.items``)."""
    return a == b or a.startswith(b + ".") or b.startswith(a + ".")


def any_alias(path: str, state: Dict[str, tuple]) -> Optional[str]:
    """First key of ``state`` aliasing ``path`` (exact match preferred)."""
    if path in state:
        return path
    for key in state:
        if paths_alias(path, key):
            return key
    return None


# The synthetic access path holding a function's return value. Lowering
# assigns it at every ``return expr``; summary computation reads its taint
# at exit to decide whether the function's result is attacker-derived.
RETURN_PATH = "__ret"


@dataclasses.dataclass(frozen=True)
class Def:
    """One definition inside a statement: ``path = f(uses)``.

    ``has_source`` marks a taint source appearing directly in the defining
    expression (a ``BitReader::read`` / ``decode*`` call result).
    ``from_call`` names the callee whose return value produced this def
    (when the RHS is dominated by one call) so interprocedural summaries
    can replace the intraprocedural approximation."""

    path: str
    uses: Tuple[str, ...] = ()
    has_source: bool = False
    source_desc: str = ""
    from_call: str = ""


@dataclasses.dataclass(frozen=True)
class CallFact:
    """One call inside a statement, with per-argument taint inputs:
    ``args[i]`` is ``(access paths read by argument i, argument i contains
    a direct source call)``. Summaries use these to map callee parameter
    facts back onto caller state."""

    callee: str
    args: Tuple[Tuple[Tuple[str, ...], bool], ...] = ()
    line: int = 0
    column: int = 0


@dataclasses.dataclass(frozen=True)
class Sink:
    """A taint-sensitive position inside a statement.

    ``paths`` are the access paths feeding the sensitive operand;
    ``direct`` means a source call sits in the operand itself (no variable
    in between, e.g. ``buf[r.read(8)]``)."""

    kind: str  # subscript | copy-length | size-arg | loop-bound | shard-index
    desc: str
    paths: Tuple[str, ...] = ()
    direct: bool = False
    # Cross-function provenance, outermost call first: each entry is one
    # "file:line callee(param)" step a summary folded into this sink.
    via: Tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class Guard:
    """A sanitizing condition attached to a branch statement: on the
    ``edge`` ('true'/'false') successor, taint on every path in ``kills``
    dies — provided every path in ``bound_paths`` (the other side of the
    comparison) is itself untainted at that point. A comparison against a
    tainted bound sanitizes nothing."""

    kills: Tuple[str, ...]
    edge: str  # 'true' | 'false'
    bound_paths: Tuple[str, ...] = ()


@dataclasses.dataclass
class Stmt:
    """One statement of the lowered IR."""

    sid: int
    line: int = 0
    column: int = 0
    text: str = ""
    defs: Tuple[Def, ...] = ()
    uses: Tuple[str, ...] = ()
    sinks: Tuple[Sink, ...] = ()
    kills: Tuple[str, ...] = ()  # unconditional from here on (MCI_CHECK)
    guards: Tuple[Guard, ...] = ()  # meaningful on branch statements only
    calls: Tuple[CallFact, ...] = ()  # calls appearing in this statement


@dataclasses.dataclass
class CfgNode:
    stmt: Stmt
    # (successor node id, edge label); label '' for unconditional edges,
    # 'true'/'false' for branch edges (guards key off the label).
    succs: List[Tuple[int, str]] = dataclasses.field(default_factory=list)


class Cfg:
    """A per-function control-flow graph over Stmt nodes. Node ids are the
    statement sids; ``entry`` is the first node executed."""

    def __init__(self) -> None:
        self.nodes: Dict[int, CfgNode] = {}
        self.entry: Optional[int] = None

    def add(self, stmt: Stmt) -> CfgNode:
        node = CfgNode(stmt=stmt)
        self.nodes[stmt.sid] = node
        if self.entry is None:
            self.entry = stmt.sid
        return node

    def edge(self, src: int, dst: int, label: str = "") -> None:
        pair = (dst, label)
        if pair not in self.nodes[src].succs:
            self.nodes[src].succs.append(pair)

    def preds(self) -> Dict[int, List[Tuple[int, str]]]:
        out: Dict[int, List[Tuple[int, str]]] = {nid: [] for nid in self.nodes}
        for nid, node in self.nodes.items():
            for dst, label in node.succs:
                out[dst].append((nid, label))
        return out


# -- def-use (reaching definitions) ----------------------------------------


def reaching_defs(cfg: Cfg, max_steps: int = 0) -> Dict[int, Dict[str, Set[int]]]:
    """Classic reaching-definitions over the CFG: for each node, the set of
    def sids per access path that may reach its entry. Used for chain
    reconstruction and directly unit-tested as the def-use layer."""
    if cfg.entry is None:
        return {}
    max_steps = max_steps or 64 * max(1, len(cfg.nodes))
    ins: Dict[int, Dict[str, Set[int]]] = {nid: {} for nid in cfg.nodes}
    work = [cfg.entry]
    steps = 0
    while work and steps < max_steps:
        steps += 1
        nid = work.pop(0)
        node = cfg.nodes[nid]
        out = {p: set(s) for p, s in ins[nid].items()}
        for d in node.stmt.defs:
            out[d.path] = {node.stmt.sid}  # strong update
        for dst, _label in node.succs:
            tgt = ins[dst]
            changed = False
            for path, sids in out.items():
                have = tgt.setdefault(path, set())
                if not sids <= have:
                    have.update(sids)
                    changed = True
            if changed and dst not in work:
                work.append(dst)
    return ins


# -- taint solver ----------------------------------------------------------


@dataclasses.dataclass
class SinkHit:
    """A sink reached by tainted data, with the statement chain that
    carried the taint from its source."""

    sink: Sink
    stmt: Stmt
    chain: Tuple[int, ...]  # sids, source first, sink last
    tainted_path: str = ""  # "" when sink.direct


@dataclasses.dataclass
class TaintResult:
    hits: List[SinkHit]
    truncated: bool
    # Per-node taint state at entry (node id -> path -> origin chain).
    # Summary computation reads return/exit states from here; empty for
    # nodes never reached.
    ins: Dict[int, Dict[str, tuple]] = dataclasses.field(default_factory=dict)


def _transfer(stmt: Stmt, state: Dict[str, tuple]) -> Dict[str, tuple]:
    out = dict(state)
    for killed in stmt.kills:
        for key in [k for k in out if paths_alias(k, killed)]:
            del out[key]
    for d in stmt.defs:
        feeder = None
        for use in d.uses:
            feeder = any_alias(use, out)
            if feeder:
                break
        # Strong update: the old value of the path (and its fields) is gone.
        for key in [k for k in out
                    if k == d.path or k.startswith(d.path + ".")]:
            del out[key]
        if d.has_source:
            out[d.path] = (stmt.sid,)
        elif feeder is not None:
            out[d.path] = state.get(feeder, ()) + (stmt.sid,)
    return out


def _apply_guards(stmt: Stmt, label: str,
                  state: Dict[str, tuple]) -> Dict[str, tuple]:
    out = state
    for g in stmt.guards:
        if g.edge != label:
            continue
        if any(any_alias(b, out) for b in g.bound_paths):
            continue  # comparing against a tainted bound sanitizes nothing
        killed = [k for k in out
                  if any(paths_alias(k, p) for p in g.kills)]
        if killed:
            out = dict(out)
            for key in killed:
                del out[key]
    return out


def solve_taint(cfg: Cfg, seed: Optional[Dict[str, tuple]] = None,
                max_steps: int = 0) -> TaintResult:
    """Flow-sensitive taint propagation to a fixpoint.

    State: access path -> origin chain (tuple of sids, source first). The
    lattice per path is untainted < tainted; merge at joins is set union
    over paths (first chain wins — chains are diagnostics, not semantics).
    Guards kill taint on the sanitized branch edge only, so a bound checked
    inside one ``if`` does not launder later unguarded uses."""
    if cfg.entry is None:
        return TaintResult(hits=[], truncated=False, ins={})
    max_steps = max_steps or 64 * max(1, len(cfg.nodes))
    ins: Dict[int, Dict[str, tuple]] = {cfg.entry: dict(seed or {})}
    work = [cfg.entry]
    steps = 0
    truncated = False
    while work:
        if steps >= max_steps:
            truncated = True
            break
        steps += 1
        nid = work.pop(0)
        node = cfg.nodes[nid]
        out = _transfer(node.stmt, ins.get(nid, {}))
        for dst, label in node.succs:
            edge_state = _apply_guards(node.stmt, label, out)
            tgt = ins.setdefault(dst, {})
            changed = False
            for path, chain in edge_state.items():
                if path not in tgt:
                    tgt[path] = chain
                    changed = True
            if changed and dst not in work:
                work.append(dst)

    hits: List[SinkHit] = []
    seen = set()
    for nid in sorted(cfg.nodes):
        node = cfg.nodes[nid]
        if not node.stmt.sinks:
            continue
        state = ins.get(nid)
        if state is None:
            continue  # unreachable
        for sink in node.stmt.sinks:
            ident = (nid, sink.kind, sink.desc)
            if ident in seen:
                continue
            if sink.direct:
                seen.add(ident)
                hits.append(SinkHit(sink=sink, stmt=node.stmt,
                                    chain=(nid,), tainted_path=""))
                continue
            for path in sink.paths:
                key = any_alias(path, state)
                if key is not None:
                    seen.add(ident)
                    hits.append(SinkHit(sink=sink, stmt=node.stmt,
                                        chain=state[key] + (nid,),
                                        tainted_path=path))
                    break
    return TaintResult(hits=hits, truncated=truncated, ins=ins)


# -- the wire-taint vocabulary ---------------------------------------------


@dataclasses.dataclass(frozen=True)
class TaintVocab:
    """What counts as a source, sink, and sanitizer for the wire-taint
    rule. Plain data so the lowering (callgraph.TaintLowering), the rule
    and the docs table all share one definition."""

    source_methods: Tuple[str, ...] = ("read",)
    source_receiver_hint: str = "BitReader"
    source_prefixes: Tuple[str, ...] = ("decode",)
    copy_len_fns: Tuple[str, ...] = ("memcpy", "memmove", "memset", "bcopy")
    size_methods: Tuple[str, ...] = ("resize", "reserve", "assign")
    index_call_fns: Tuple[str, ...] = ("shardOf", "shardOfItem", "endpoint")
    clamp_fns: Tuple[str, ...] = ("min", "clamp")
    guard_fns: Tuple[str, ...] = ("fits",)
    check_macros: Tuple[str, ...] = ("MCI_CHECK", "MCI_DCHECK")


DEFAULT_TAINT_VOCAB = TaintVocab()


def to_sarif(findings: List[Finding], descriptions: Optional[Dict[str, str]]
             = None) -> dict:
    """Findings as a SARIF 2.1.0 log (what CI uploads so findings annotate
    the PR diff). Paths are repo-relative against SRCROOT."""
    descriptions = descriptions or {}
    rule_ids = sorted({f.rule for f in findings})
    results = []
    for f in findings:
        text = f.message
        if f.symbol:
            text += " [in %s]" % f.symbol
        if f.detail:
            text += "\n" + f.detail
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": text},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.file,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, f.line),
                        "startColumn": max(1, f.column),
                    },
                },
            }],
        }
        if f.related:
            # The cross-function source->sink chain, one step per location,
            # so the PR annotation shows every hop rather than just the
            # sink. Source first, matching Finding.related.
            result["relatedLocations"] = [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": step.get("file", f.file),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, step.get("line", 1))},
                },
                "message": {"text": step.get("message", "")},
            } for step in f.related]
        results.append(result)
    driver = {
        "name": "mci-analyze",
        "informationUri": "https://example.invalid/mci-analyze",
        "rules": [
            {"id": rid,
             "shortDescription": {"text": descriptions.get(rid, rid)}}
            for rid in rule_ids
        ],
    }
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": driver},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }


# MCI_CHECK(...) conditions are macro text, not AST we can rely on across
# libclang versions; extract simple upper-bound comparisons textually.
# ``a <= b`` / ``a < b`` / ``a == b`` kill a; ``a >= b`` / ``a > b`` kill b.
_CHECK_CMP_RE = re.compile(
    r"([A-Za-z_][\w>.\-]*?)\s*(<=|>=|==|(?<![<>=!])<(?![<=])|"
    r"(?<![<>=!-])>(?![>=]))\s*([A-Za-z_][\w>.\-]*|\d+)"
)


def check_macro_kills(text: str) -> Tuple[str, ...]:
    """Access paths sanitized by an MCI_CHECK-style statement's condition
    (the statement aborts unless the condition holds, so fallthrough code
    may rely on it)."""
    kills = []
    for lhs, op, rhs in _CHECK_CMP_RE.findall(text):
        target = lhs if op in ("<", "<=", "==") else rhs
        target = target.replace("->", ".")
        if re.fullmatch(r"[A-Za-z_][\w.]*", target):
            kills.append(target)
    return tuple(kills)

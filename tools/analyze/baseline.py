"""Baseline load/diff/write for mci-analyze (the CodeChecker-style workflow).

The baseline is a checked-in JSON file of finding *keys* (rule|file|symbol|
message — deliberately no line numbers, so pure reformatting does not churn
it). CI fails only on findings whose key is absent from the baseline; stale
baseline entries are reported so the file shrinks as debt is paid down.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Tuple

BASELINE_VERSION = 1

# Rules whose findings may never be baselined. A hot-path allocation is a
# real perf defect on the per-tick fan-out: it is either fixed, or the
# amortisation argument is written at the allocation site with
# MCI-ANALYZE-ALLOW where reviewers of that code will see it. A baseline
# entry (keyed repo-wide, line-free) would silently cover future
# allocations in the same function too. Callback-lifetime findings are a
# use-after-free one teardown reordering away, so they get the same
# treatment: fix the deregistration or argue the lifetime at the
# registration site.
NEVER_BASELINE = frozenset({"hot-path-alloc", "callback-lifetime"})


def _rule_of(key: str) -> str:
    return key.split("|", 1)[0]


def load(path: str) -> Dict[str, str]:
    """Returns {finding key: justification}; empty when the file is absent."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            "%s: unsupported baseline version %r" % (path, data.get("version"))
        )
    entries = data.get("findings", [])
    out: Dict[str, str] = {}
    for e in entries:
        out[e["key"]] = e.get("why", "")
    banned = sorted(k for k in out if _rule_of(k) in NEVER_BASELINE)
    if banned:
        raise ValueError(
            "%s: rule(s) %s may not be baselined — fix the finding or "
            "justify it at the site with MCI-ANALYZE-ALLOW. Offending "
            "keys:\n  %s"
            % (path, ", ".join(sorted(NEVER_BASELINE)), "\n  ".join(banned))
        )
    return out


def diff(findings, baseline: Dict[str, str]) -> Tuple[list, List[str]]:
    """Splits findings into (new, stale-baseline-keys).

    ``new`` are findings not covered by the baseline — these fail the build.
    ``stale`` are baseline keys no current finding matches — these are
    reported (not fatal) so fixed debt gets deleted from the file.
    """
    current_keys = {f.key() for f in findings}
    new = [f for f in findings if f.key() not in baseline]
    stale = sorted(k for k in baseline if k not in current_keys)
    return new, stale


def write(path: str, findings, why: str = "baselined pre-existing finding") \
        -> None:
    """Writes the full current finding set as the new baseline (the
    --write-baseline escape hatch; review the diff before committing).

    NEVER_BASELINE findings are skipped with a warning — writing them
    would produce a file load() refuses — and stay live for the next run.
    """
    keys = sorted({f.key() for f in findings})
    skipped = [k for k in keys if _rule_of(k) in NEVER_BASELINE]
    if skipped:
        print(
            "baseline: refusing to baseline %d %s finding(s); fix or "
            "MCI-ANALYZE-ALLOW them instead"
            % (len(skipped), "/".join(sorted(NEVER_BASELINE))),
            file=sys.stderr,
        )
        keys = [k for k in keys if _rule_of(k) not in NEVER_BASELINE]
    data = {
        "version": BASELINE_VERSION,
        "comment": "mci-analyze baseline: finding keys tolerated by CI. "
        "Keys are line-free (rule|file|symbol|message). Regenerate with "
        "tools/analyze/mci_analyze.py --write-baseline; prefer fixing or "
        "MCI-ANALYZE-ALLOW over baselining new findings.",
        "findings": [{"key": k, "why": why} for k in keys],
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)

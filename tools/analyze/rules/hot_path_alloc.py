"""hot-path-alloc: nothing reachable from an MCI_HOT function may allocate.

PR 2 made the simulation kernel allocation-free and proved it with a
counting-allocator bench gate — but only for the workloads the bench runs.
This rule makes the claim static: functions annotated MCI_HOT (the
``mci::hot`` clang annotation from src/core/annotations.hpp) are roots, and
any reachable ``new`` expression, malloc-family call, or growth-capable STL
member call is a finding. Amortised one-time growth (free-list pools,
scratch buffers that reach a high-water mark) is justified in place with
MCI-ANALYZE-ALLOW, keeping every exception audited.
"""

from __future__ import annotations

from typing import List

from engine import Finding

RULE_NAME = "hot-path-alloc"
DESCRIPTION = (
    "no new/malloc/allocating STL calls reachable from MCI_HOT functions"
)

ALLOC_FNS = {
    "malloc", "calloc", "realloc", "aligned_alloc", "posix_memalign",
    "strdup", "strndup", "operator new", "operator new[]",
}

# STL members that can grow their container. Receiver types are not
# resolvable cheaply through cindex, so this is name-based; hits in hot
# code are exactly what the rule wants a human to look at (and either
# restructure or MCI-ANALYZE-ALLOW with the amortisation argument).
STL_GROWTH = {
    "push_back", "emplace_back", "push_front", "emplace_front", "insert",
    "emplace", "emplace_hint", "resize", "reserve", "rehash", "append",
    "assign", "shrink_to_fit", "try_emplace", "insert_or_assign",
}


def check(ctx) -> List[Finding]:
    graph = ctx.callgraph()
    roots = [usr for usr, node in graph.nodes.items() if node.hot]
    if not roots:
        return []
    result = graph.reachable(roots, budget=ctx.call_budget,
                             max_depth=ctx.call_depth)
    findings: List[Finding] = []
    for usr in sorted(result.reached):
        node = graph.node(usr)
        if node is None:
            continue
        chain = graph.chain(result, usr)
        for (file, line, col) in node.new_exprs:
            findings.append(
                Finding(rule=RULE_NAME, file=file, line=line, column=col,
                        message="'new' expression on an MCI_HOT path",
                        symbol=node.name,
                        detail="reachable via %s" % chain)
            )
        for site in node.calls:
            name = site.callee_name
            if name in ALLOC_FNS:
                msg = "allocation call '%s' on an MCI_HOT path" % name
            elif name in STL_GROWTH:
                msg = ("growth-capable container call '%s' on an MCI_HOT "
                       "path" % name)
            else:
                continue
            findings.append(
                Finding(rule=RULE_NAME, file=site.file, line=site.line,
                        column=site.column, message=msg, symbol=node.name,
                        detail="reachable via %s" % chain)
            )
    if result.truncated:
        findings.append(
            Finding(rule=RULE_NAME, file="", line=0, column=0,
                    message="call-graph walk truncated by budget; raise "
                    "--call-budget/--call-depth")
        )
    return findings

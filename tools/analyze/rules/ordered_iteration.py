"""ordered-iteration: range-for over unordered containers in src/.

Unordered-container iteration order is unspecified and varies across
libstdc++ versions, hash seeds and load factors; anything it feeds into
reports, wire frames or JSON output breaks the project's byte-identical
determinism pin. The old lint_determinism.py rule 5 pattern-matched
declarations textually and could not see through typedefs, members or
auto — this rule asks the type system instead and supersedes it (the
regex script stays as the no-clang fallback for the other rules).
"""

from __future__ import annotations

import re
from typing import List

from engine import Finding

RULE_NAME = "ordered-iteration"
DESCRIPTION = (
    "range-for over std::unordered_* containers has unspecified order; "
    "sort or use an ordered container before results leave the function"
)

_UNORDERED_RE = re.compile(
    r"\bstd::(?:__[a-z0-9]+::)?unordered_(?:multi)?(?:map|set)\b"
)


def check(ctx) -> List[Finding]:
    ck = ctx.cindex.CursorKind
    func_kinds = {
        ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR, ck.DESTRUCTOR,
        ck.FUNCTION_TEMPLATE, ck.CONVERSION_FUNCTION, ck.LAMBDA_EXPR,
    }
    findings: List[Finding] = []
    seen = set()

    def range_is_unordered(cursor) -> str:
        """Returns the offending canonical type spelling, or ''."""
        # Children of CXX_FOR_RANGE_STMT: loop variable decl, the range
        # initialiser expression(s), then the body. Checking every
        # non-statement child's canonical type is robust across clang
        # versions' exact child layouts.
        for child in cursor.get_children():
            if child.kind in (ck.COMPOUND_STMT,):
                continue
            try:
                spelling = child.type.get_canonical().spelling
            except Exception:
                continue
            if spelling and _UNORDERED_RE.search(spelling):
                return spelling
        return ""

    def visit(cursor, symbol: str) -> None:
        loc = cursor.location
        if loc.file is not None and not ctx.in_repo(loc.file.name):
            return
        if cursor.kind in func_kinds and cursor.spelling:
            symbol = cursor.spelling
        if cursor.kind == ck.CXX_FOR_RANGE_STMT:
            rel, line, col = ctx.location(cursor)
            if rel.startswith("src/") or rel.startswith("tests/analyze/"):
                offender = range_is_unordered(cursor)
                if offender:
                    ctx.suppressions.load_file(
                        ctx.repo_root + "/" + rel, rel)
                    ident = (rel, line, col)
                    if ident not in seen:
                        seen.add(ident)
                        short = offender.split("<", 1)[0]
                        findings.append(
                            Finding(
                                rule=RULE_NAME, file=rel, line=line,
                                column=col,
                                message="range-for over %s: iteration "
                                "order is unspecified" % short,
                                symbol=symbol,
                            )
                        )
        for child in cursor.get_children():
            visit(child, symbol)

    for _, tu in ctx.tus:
        for child in tu.cursor.get_children():
            visit(child, "")
    return findings

"""reactor-blocking: nothing reachable from a live::Reactor callback may
block.

The paper's central liveness property is that IRs go out every L seconds no
matter what clients do; the Reactor is single-threaded, so one blocking
syscall inside any registered callback stalls every timer and every
connection. Roots are the lambdas passed to Reactor::addFd / addTimer; the
walk follows direct calls (budget-bounded). Two classes of sink:

  * always-blocking calls (sleep/poll/select/...) — flagged unconditionally;
  * socket I/O (connect/read/recv/send/...) — flagged unless the call site
    passes MSG_DONTWAIT or the enclosing function shows nonblocking
    evidence (SOCK_NONBLOCK / O_NONBLOCK / *_NONBLOCK tokens), the
    "not provably O_NONBLOCK" heuristic.
"""

from __future__ import annotations

import re
from typing import List

from engine import Finding

RULE_NAME = "reactor-blocking"
DESCRIPTION = (
    "blocking syscalls reachable from live::Reactor callbacks stall the "
    "L-period IR broadcast"
)

# Block regardless of fd flags. epoll_wait belongs here too: the only
# legitimate caller is the reactor loop itself, which is never a callback.
ALWAYS_BLOCKING = {
    "sleep", "usleep", "nanosleep", "clock_nanosleep", "sleep_for",
    "sleep_until", "poll", "ppoll", "select", "pselect", "epoll_wait",
    "epoll_pwait", "sigwait", "sigwaitinfo", "wait", "waitpid", "pause",
    "flock", "fsync", "fdatasync", "system",
}

# Blocking unless the socket is provably nonblocking.
SOCKET_IO = {
    "connect", "accept", "accept4", "read", "recv", "recvfrom", "recvmsg",
    "write", "send", "sendto", "sendmsg", "readv", "writev",
}

# Deliberately excludes helper names like makeNonBlocking: calling one
# later in the function proves nothing about I/O issued before it.
_NONBLOCK_EVIDENCE = re.compile(
    r"SOCK_NONBLOCK|O_NONBLOCK|MSG_DONTWAIT|SFD_NONBLOCK|TFD_NONBLOCK"
    r"|EFD_NONBLOCK"
)


def _call_line_text(ctx, site) -> str:
    lines = ctx.file_lines(site.file)
    if 0 < site.line <= len(lines):
        return lines[site.line - 1]
    return ""


def check(ctx) -> List[Finding]:
    graph = ctx.callgraph()
    roots = []
    root_regs = {}
    for reg in graph.registrations:
        if "Reactor" not in reg.receiver_class:
            continue
        for usr in reg.callback_usrs:
            roots.append(usr)
            root_regs.setdefault(usr, reg)
    if not roots:
        return []
    result = graph.reachable(roots, budget=ctx.call_budget,
                             max_depth=ctx.call_depth)
    findings: List[Finding] = []
    for usr in sorted(result.reached):
        node = graph.node(usr)
        if node is None:
            continue
        body = ctx.extent_text(node.file, node.line, node.end_line)
        fn_nonblock = bool(_NONBLOCK_EVIDENCE.search(body))
        for site in node.calls:
            name = site.callee_name
            blocking = name in ALWAYS_BLOCKING
            if not blocking and name in SOCKET_IO:
                if fn_nonblock:
                    continue
                if "MSG_DONTWAIT" in _call_line_text(ctx, site):
                    continue
                blocking = True
            if not blocking:
                continue
            findings.append(
                Finding(
                    rule=RULE_NAME,
                    file=site.file,
                    line=site.line,
                    column=site.column,
                    message="'%s' may block inside a Reactor callback"
                    % name,
                    symbol=node.name,
                    detail="reachable via %s"
                    % graph.chain(result, usr),
                )
            )
    if result.truncated:
        # Surface budget exhaustion as its own finding so CI notices an
        # incomplete walk instead of silently passing.
        findings.append(
            Finding(
                rule=RULE_NAME,
                file="",
                line=0,
                column=0,
                message="call-graph walk truncated by budget; raise "
                "--call-budget/--call-depth",
            )
        )
    return findings

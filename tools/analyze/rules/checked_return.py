"""checked-return: results of send-queue, encode and decode calls must be
consumed.

A dropped decode result means an untrusted frame was "parsed" and ignored;
a dropped sendFrame result means the caller keeps touching a connection
that may have just been torn down. The watched set mirrors the APIs this
PR marks [[nodiscard]] — the compiler enforces it under -Werror, this rule
enforces it in any build and in fixture code that never compiles with our
flags. A call is a finding when its full expression result is discarded
(expression-statement position); an explicit (void) cast is a visible,
greppable opt-out.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from engine import Finding

RULE_NAME = "checked-return"
DESCRIPTION = (
    "ignored results of send-queue / encode / codec decode calls"
)

# (method name, required enclosing class or None for free functions /
# any class). Names stay narrow enough that a generic 'next' elsewhere
# does not fire.
WATCHED: List[Tuple[str, Optional[str]]] = [
    ("sendFrame", "BroadcastServer"),
    ("sendFrame", "ClientAgent"),
    ("next", "FrameBuffer"),
    ("cancel", "EventQueue"),
    ("cancelTimer", "Reactor"),
    ("addFd", "Reactor"),
    ("addTimer", "Reactor"),
    ("encodeInto", None),
    ("encodeFrame", None),
    ("decodeFrame", None),
    ("decodeHello", None),
    ("decodeWelcome", None),
    ("decodeQueryRequest", None),
    ("decodeDataItem", None),
    ("decodeCheck", None),
    ("decodeCheckAck", None),
    ("decodeValidityReply", None),
    ("decodeAudit", None),
    ("decodeAny", "ReportCodec"),
    ("decodeTs", "ReportCodec"),
    ("decodeBs", "ReportCodec"),
    ("decodeSig", "ReportCodec"),
    ("peekKind", "ReportCodec"),
]

_BY_NAME = {}
for _name, _cls in WATCHED:
    _BY_NAME.setdefault(_name, set()).add(_cls)


def _is_watched(ctx, cursor) -> bool:
    name = cursor.spelling
    classes = _BY_NAME.get(name)
    if classes is None:
        return False
    ref = cursor.referenced
    if ref is None:
        return False
    try:
        if ref.result_type.get_canonical().kind == \
                ctx.cindex.TypeKind.VOID:
            return False  # nothing to discard
    except Exception:
        pass
    if None in classes:
        return True
    parent = ref.semantic_parent
    owner = parent.spelling if parent is not None else ""
    return owner in classes


def check(ctx) -> List[Finding]:
    ck = ctx.cindex.CursorKind
    func_kinds = {
        ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR, ck.DESTRUCTOR,
        ck.FUNCTION_TEMPLATE, ck.CONVERSION_FUNCTION, ck.LAMBDA_EXPR,
    }
    findings: List[Finding] = []
    seen = set()

    def visit(cursor, symbol: str) -> None:
        loc = cursor.location
        if loc.file is not None and not ctx.in_repo(loc.file.name):
            return
        if cursor.kind in func_kinds and cursor.spelling:
            symbol = cursor.spelling
        if cursor.kind == ck.COMPOUND_STMT:
            for stmt in cursor.get_children():
                # A CALL_EXPR that *is* the statement discards its value.
                # (void)-casts and assignments wrap it in another node, so
                # they naturally do not match.
                if stmt.kind == ck.CALL_EXPR and _is_watched(ctx, stmt):
                    rel, line, col = ctx.location(stmt)
                    if rel:
                        ctx.suppressions.load_file(
                            ctx.repo_root + "/" + rel, rel)
                        ident = (rel, line, col)
                        if ident not in seen:
                            seen.add(ident)
                            findings.append(
                                Finding(
                                    rule=RULE_NAME, file=rel, line=line,
                                    column=col,
                                    message="result of '%s' ignored"
                                    % stmt.spelling,
                                    symbol=symbol,
                                )
                            )
                visit(stmt, symbol)
            return
        for child in cursor.get_children():
            visit(child, symbol)

    for _, tu in ctx.tus:
        for child in tu.cursor.get_children():
            visit(child, "")
    return findings

"""wire-taint: untrusted wire bytes must be bounds-checked before they
become indices, lengths, or allocation sizes.

Interprocedural, flow-sensitive taint analysis over the decode paths.
Sources are ``BitReader::read`` results and ``decode*`` call results;
sinks are subscripts, ``memcpy``-family lengths, container
``resize``/``reserve``/``assign`` sizes, loop bounds, and
``shardOf``/``endpoint`` indices; sanitizers are comparisons against a
constant or ``kMax*`` bound, ``MCI_CHECK``, ``std::min`` clamps and
``BitReader::fits`` — with taint killed only on the guarded branch edge,
so a bound checked in one ``if`` does not launder a later unguarded use.

Cross-function flows go through per-function transfer summaries
(summaries.py): a helper whose return value is attacker-derived taints its
callers, a helper that guards its own result does NOT (so the summary pass
*removes* false positives the intraprocedural pass could only ALLOW), and
an argument flowing into a callee's sink is reported at the call site with
the full source -> sink chain across both functions.

The CFG construction and fixpoint solver live in engine.py (pure Python,
unit-tested without libclang); callgraph.TaintLowering is the cindex
front-end that feeds them.
"""

from __future__ import annotations

import re
from typing import Dict, List

import engine
from engine import Finding

RULE_NAME = "wire-taint"
DESCRIPTION = (
    "decoded wire values must be bounds-checked before use as an index, "
    "length, size, or loop bound (cross-function via summaries)"
)
REQUIRES_CLANG = True

SCOPE_PREFIXES = (
    "src/live/wire.",
    "src/live/shard_map.",
    "src/live/reshard.",
    "src/report/codec.",
    "src/swarm/mux.",
    "tests/analyze/fixtures/wire_taint/",  # the rule's own test corpus
)

_SINK_MESSAGES = {
    "subscript": "tainted wire value used as a subscript index",
    "copy-length": "tainted wire value used as a raw copy length",
    "size-arg": "tainted wire value sized a container without a bound check",
    "loop-bound": "tainted wire value used as a loop bound",
    "shard-index": "tainted wire value used as a shard/endpoint index",
}

_VIA_RE = re.compile(r"^([^:]+):(\d+):\s*(.*)$")


def _in_scope(rel: str) -> bool:
    return any(rel.startswith(p) for p in SCOPE_PREFIXES)


def interproc(ctx):
    """Lowered functions + the propagated summary table, computed once per
    process and shared with codec-bounds (which uses the specialized taint
    solution as a proof that an access path is never attacker-derived)."""
    cached = getattr(ctx, "_wire_taint_interproc", None)
    if cached is not None:
        return cached
    import callgraph as cg
    import summaries as sm

    functions = cg.lower_functions(ctx, _in_scope)
    table, stats = sm.build_summaries(functions)
    solved = []
    for fn in functions:
        cfg = sm.specialize(fn.cfg, table)
        solved.append((fn, cfg, engine.solve_taint(cfg)))
    cached = (solved, table, stats)
    ctx._wire_taint_interproc = cached
    return cached


class FnProof:
    """The taint-proof view of one analyzed function for codec-bounds:
    which access paths are ever attacker-derived inside it, under the
    *hardened* semantics where a call without a summary is assumed to
    return tainted data. A raw access whose statement reads only paths
    disjoint from ``tainted`` is mechanically proven guarded — and the
    proof genuinely needs the summary pass, because before it every
    helper's return value was an unknown."""

    def __init__(self, start: int, end: int, truncated: bool,
                 tainted: frozenset, line_paths: Dict[int, frozenset]):
        self.start = start
        self.end = end
        self.truncated = truncated
        self.tainted = tainted
        self.line_paths = line_paths


def _harden(cfg: engine.Cfg, table) -> engine.Cfg:
    """Defs produced by calls with no summary become sources: the proof
    must not assume an unanalyzed helper returns bounded data."""
    import dataclasses as dc

    out = engine.Cfg()
    for sid in cfg.nodes:
        stmt = cfg.nodes[sid].stmt
        new_defs = tuple(
            dc.replace(d, has_source=True,
                       source_desc="unsummarized call %s()" % d.from_call)
            if d.from_call and d.from_call not in table else d
            for d in stmt.defs)
        if new_defs != stmt.defs:
            stmt = dc.replace(stmt, defs=new_defs)
        out.add(stmt)
    out.entry = cfg.entry
    for sid, node in cfg.nodes.items():
        for dst, label in node.succs:
            out.edge(sid, dst, label)
    return out


def codec_proof(ctx) -> Dict[str, List[FnProof]]:
    """file -> per-function proofs (see FnProof), for codec-bounds."""
    cached = getattr(ctx, "_wire_taint_proof", None)
    if cached is not None:
        return cached
    solved, table, _stats = interproc(ctx)
    out: Dict[str, List[FnProof]] = {}
    for fn, cfg, _result in solved:
        hardened = _harden(cfg, table)
        res = engine.solve_taint(hardened)
        tainted = set()
        for nid, state in res.ins.items():
            tainted.update(state)
            tainted.update(
                engine._transfer(hardened.nodes[nid].stmt, state))
        end = fn.line
        line_paths: Dict[int, set] = {}
        for node in hardened.nodes.values():
            stmt = node.stmt
            end = max(end, stmt.line)
            reads = set(stmt.uses)
            for d in stmt.defs:
                reads.update(d.uses)
            for s in stmt.sinks:
                reads.update(s.paths)
            if reads:
                line_paths.setdefault(stmt.line, set()).update(reads)
        out.setdefault(fn.file, []).append(FnProof(
            start=fn.line, end=end, truncated=res.truncated,
            tainted=frozenset(tainted),
            line_paths={ln: frozenset(ps)
                        for ln, ps in line_paths.items()}))
    ctx._wire_taint_proof = out
    return out


def _chain_note(fn, cfg, hit) -> str:
    parts: List[str] = []
    for step in hit.sink.via:
        parts.append(step)
    for sid in hit.chain:
        stmt = cfg.nodes[sid].stmt
        frag = stmt.text if len(stmt.text) <= 60 else stmt.text[:57] + "..."
        parts.append("%s:%d `%s`" % (fn.file, stmt.line, frag))
    label = "source -> sink: " if len(parts) > 1 else "sink: "
    return label + " ; ".join(parts)


def _related(fn, cfg, hit) -> List[dict]:
    """The cross-function chain as structured locations (source first) for
    SARIF relatedLocations and --explain."""
    steps: List[dict] = []
    for sid in hit.chain:
        stmt = cfg.nodes[sid].stmt
        steps.append({"file": fn.file, "line": stmt.line,
                      "message": stmt.text[:120]})
    # via steps are deeper callee hops, outermost first; append after the
    # caller-side chain so the printed order follows the data.
    for step in hit.sink.via:
        m = _VIA_RE.match(step)
        if m:
            steps.append({"file": m.group(1), "line": int(m.group(2)),
                          "message": m.group(3)})
        else:
            steps.append({"file": fn.file, "line": hit.stmt.line,
                          "message": step})
    return steps


def check(ctx) -> List[Finding]:
    solved, _table, _stats = interproc(ctx)
    findings: List[Finding] = []
    for fn, cfg, result in solved:
        for hit in result.hits:
            message = _SINK_MESSAGES.get(
                hit.sink.kind, "tainted wire value reaches a sink")
            what = hit.tainted_path or "<decoded value>"
            findings.append(Finding(
                rule=RULE_NAME,
                file=fn.file,
                line=hit.stmt.line,
                column=hit.stmt.column,
                message="%s: %s (%s)" % (message, what, hit.sink.desc),
                symbol=fn.name,
                detail=_chain_note(fn, cfg, hit),
                related=_related(fn, cfg, hit),
            ))
        if result.truncated:
            findings.append(Finding(
                rule=RULE_NAME, file=fn.file, line=fn.line, column=1,
                message="taint fixpoint truncated; review manually",
                symbol=fn.name,
            ))
    return findings

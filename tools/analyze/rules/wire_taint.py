"""wire-taint: untrusted wire bytes must be bounds-checked before they
become indices, lengths, or allocation sizes.

Intraprocedural, flow-sensitive taint analysis over the decode paths.
Sources are ``BitReader::read`` results and ``decode*`` call results;
sinks are subscripts, ``memcpy``-family lengths, container
``resize``/``reserve``/``assign`` sizes, loop bounds, and
``shardOf``/``endpoint`` indices; sanitizers are comparisons against a
constant or ``kMax*`` bound, ``MCI_CHECK``, ``std::min`` clamps and
``BitReader::fits`` — with taint killed only on the guarded branch edge,
so a bound checked in one ``if`` does not launder a later unguarded use.
Findings carry the source -> sink statement chain.

The CFG construction and fixpoint solver live in engine.py (pure Python,
unit-tested without libclang); callgraph.TaintLowering is the cindex
front-end that feeds them.
"""

from __future__ import annotations

from typing import List

import engine
from engine import Finding

RULE_NAME = "wire-taint"
DESCRIPTION = (
    "decoded wire values must be bounds-checked before use as an index, "
    "length, size, or loop bound"
)
REQUIRES_CLANG = True

SCOPE_PREFIXES = (
    "src/live/wire.",
    "src/live/shard_map.",
    "src/report/codec.",
    "tests/analyze/fixtures/wire_taint/",  # the rule's own test corpus
)

_SINK_MESSAGES = {
    "subscript": "tainted wire value used as a subscript index",
    "copy-length": "tainted wire value used as a raw copy length",
    "size-arg": "tainted wire value sized a container without a bound check",
    "loop-bound": "tainted wire value used as a loop bound",
    "shard-index": "tainted wire value used as a shard/endpoint index",
}


def _in_scope(rel: str) -> bool:
    return any(rel.startswith(p) for p in SCOPE_PREFIXES)


def _chain_note(fn, hit) -> str:
    parts: List[str] = []
    for sid in hit.chain:
        stmt = fn.cfg.nodes[sid].stmt
        frag = stmt.text if len(stmt.text) <= 60 else stmt.text[:57] + "..."
        parts.append("%s:%d `%s`" % (fn.file, stmt.line, frag))
    label = "source -> sink: " if len(parts) > 1 else "sink: "
    return label + " ; ".join(parts)


def check(ctx) -> List[Finding]:
    import callgraph as cg

    functions = cg.lower_functions(ctx, _in_scope)
    findings: List[Finding] = []
    for fn in functions:
        result = engine.solve_taint(fn.cfg)
        for hit in result.hits:
            message = _SINK_MESSAGES.get(
                hit.sink.kind, "tainted wire value reaches a sink")
            what = hit.tainted_path or "<decoded value>"
            findings.append(Finding(
                rule=RULE_NAME,
                file=fn.file,
                line=hit.stmt.line,
                column=hit.stmt.column,
                message="%s: %s (%s)" % (message, what, hit.sink.desc),
                symbol=fn.name,
                detail=_chain_note(fn, hit),
            ))
        if result.truncated:
            findings.append(Finding(
                rule=RULE_NAME, file=fn.file, line=fn.line, column=1,
                message="taint fixpoint truncated; review manually",
                symbol=fn.name,
            ))
    return findings

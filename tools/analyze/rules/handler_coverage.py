"""handler-coverage: every frame type that can arrive at an endpoint must
have a dispatch arm there, and no endpoint may handle a type the schema
does not name.

Pure-text rule (REQUIRES_CLANG = False): the frame table comes from the
``frames`` section of docs/wire_schema.json (extracted from the FrameType
enum's direction doc-comments by codec_schema.py — the codec_schema_drift
gate keeps it honest), so this runs even where the libclang rules skip.

For each dispatch file the rule knows which directions terminate there:

* ``broadcast_server.cpp`` receives ``client -> server`` and the
  ``shard -> shard`` backfill stream;
* ``client_agent.cpp`` and ``swarm/mux.cpp`` receive everything the
  server emits (``server -> client`` / ``server -> clients``).

A frame is *handled* when ``FrameType::kX`` appears in code (a case
label or a header.type comparison). An endpoint may opt out of a type it
deliberately ignores, but only by naming it in a comment next to the
default arm — silence is a finding, because a silently-dropped frame is
exactly how a new message type ships half-wired. Handling a ``kX`` the
schema does not know is the inverse finding.

Fixture files declare their expectations in-file with
``// handler-coverage-receives: <direction prefix>`` so bad/good pairs
stay hermetic.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Tuple

from engine import Finding

RULE_NAME = "handler-coverage"
DESCRIPTION = (
    "every schema frame type arriving at an endpoint needs a dispatch "
    "arm (or a named opt-out comment); no arm may handle an unknown type"
)
REQUIRES_CLANG = False

# file -> direction prefixes that terminate there. A frame whose
# direction starts with any listed prefix must be dispatched in the file.
DISPATCH_FILES: Dict[str, Tuple[str, ...]] = {
    "src/live/broadcast_server.cpp": ("client -> server", "shard -> shard"),
    "src/live/client_agent.cpp": ("server -> client",),
    "src/swarm/mux.cpp": ("server -> client",),
}

FIXTURE_PREFIX = "tests/analyze/fixtures/handler_coverage/"

_DIRECTIVE_RE = re.compile(
    r"//\s*handler-coverage-receives:\s*(.+?)\s*$", re.MULTILINE)
_MENTION_RE = re.compile(r"FrameType::(k[A-Z]\w*)")
_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


def _load_frames(ctx) -> Dict[str, dict]:
    """The frames table, preferring the checked-in schema (what CI
    reviews) and falling back to live extraction from the header."""
    import codec_schema

    try:
        with open(os.path.join(ctx.repo_root, codec_schema.SCHEMA_PATH),
                  "r", encoding="utf-8") as fh:
            frames = json.load(fh).get("frames")
        if frames:
            return frames
    except (OSError, ValueError):
        pass
    return codec_schema.extract_frames_path(ctx.repo_root)


def _split_mentions(text: str) -> Tuple[Dict[str, int], Dict[str, int]]:
    """(code mentions, comment mentions) of FrameType enumerators and
    bare kX names, each mapping name -> first line."""
    comments: Dict[str, int] = {}
    for m in _COMMENT_RE.finditer(text):
        for name in re.findall(r"\bk[A-Z]\w*\b", m.group(0)):
            comments.setdefault(name, text.count("\n", 0, m.start()) + 1)
    code_text = _COMMENT_RE.sub(lambda m: "\n" * m.group(0).count("\n"),
                                text)
    code: Dict[str, int] = {}
    for m in _MENTION_RE.finditer(code_text):
        code.setdefault(m.group(1),
                        code_text.count("\n", 0, m.start()) + 1)
    return code, comments


def check(ctx) -> List[Finding]:
    frames = _load_frames(ctx)
    findings: List[Finding] = []
    if not frames:
        findings.append(Finding(
            rule=RULE_NAME, file="docs/wire_schema.json", line=1, column=1,
            message="schema has no frames table; run "
                    "tools/analyze/codec_schema.py --write",
        ))
        return findings

    targets: List[Tuple[str, Tuple[str, ...]]] = []
    for rel in getattr(ctx, "targets", []):
        if rel in DISPATCH_FILES:
            targets.append((rel, DISPATCH_FILES[rel]))
        elif rel.startswith(FIXTURE_PREFIX):
            targets.append((rel, ()))  # directions read from the file

    for rel, expects in targets:
        path = os.path.join(ctx.repo_root, rel)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError:
            continue
        ctx.suppressions.load_file(path, rel)
        if not expects:
            expects = tuple(_DIRECTIVE_RE.findall(text))
            if not expects:
                continue  # fixture without a directive: out of scope
        code, comments = _split_mentions(text)

        for name in sorted(frames, key=lambda n: frames[n]["value"]):
            direction = frames[name]["direction"]
            if not any(direction.startswith(p) for p in expects):
                continue
            if name in code:
                continue
            if name in comments:
                continue  # named opt-out next to the default arm
            findings.append(Finding(
                rule=RULE_NAME, file=rel, line=1, column=1,
                message="frame %s (%s) has no dispatch arm and no named "
                        "opt-out comment" % (name, direction),
                symbol=name,
                detail="schema value %d: %s"
                       % (frames[name]["value"], frames[name]["doc"]),
            ))
        for name, line in sorted(code.items()):
            if name not in frames:
                findings.append(Finding(
                    rule=RULE_NAME, file=rel, line=line, column=1,
                    message="dispatch arm handles FrameType::%s, which "
                            "the wire schema does not name" % name,
                    symbol=name,
                ))
    return findings

"""Rule registry for mci-analyze. Each module exposes RULE_NAME,
DESCRIPTION and check(ctx) -> [Finding]."""

from rules import (  # noqa: F401
    callback_lifetime,
    checked_return,
    codec_bounds,
    codec_symmetry,
    handler_coverage,
    hot_path_alloc,
    ordered_iteration,
    reactor_blocking,
    wire_taint,
)

ALL_RULES = {
    mod.RULE_NAME: mod
    for mod in (
        reactor_blocking,
        codec_bounds,
        hot_path_alloc,
        checked_return,
        ordered_iteration,
        wire_taint,
        codec_symmetry,
        callback_lifetime,
        handler_coverage,
    )
}

# Rules that work without libclang (textual extraction); mci_analyze runs
# these even when the cindex gate would otherwise skip.
SYNTACTIC_RULES = tuple(sorted(
    name for name, mod in ALL_RULES.items()
    if not getattr(mod, "REQUIRES_CLANG", True)
))
# The heavier pass the analyze_dataflow CTest job runs: the
# summary-based interprocedural rules plus the schema-driven gates they
# keep honest.
DATAFLOW_RULES = ("wire-taint", "codec-symmetry", "callback-lifetime",
                  "handler-coverage")

"""Rule registry for mci-analyze. Each module exposes RULE_NAME,
DESCRIPTION and check(ctx) -> [Finding]."""

from rules import (  # noqa: F401
    checked_return,
    codec_bounds,
    hot_path_alloc,
    ordered_iteration,
    reactor_blocking,
)

ALL_RULES = {
    mod.RULE_NAME: mod
    for mod in (
        reactor_blocking,
        codec_bounds,
        hot_path_alloc,
        checked_return,
        ordered_iteration,
    )
}

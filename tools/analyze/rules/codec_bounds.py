"""codec-bounds: wire/report decode paths must go through the bounded
cursor API.

Reports arrive from an untrusted downlink; every read out of a frame
payload must bounds-check. The bounded cursor is report::BitReader (reads
clear ok() on underrun) — raw pointer arithmetic, raw pointer subscripts
and unchecked memcpy inside the codec scope (src/live/wire.* and
src/report/) are findings. The frame *envelope* (CRC + length header) is
the designed trust boundary below the cursor; its handful of raw reads
carry MCI-ANALYZE-ALLOW justifications instead of an exemption the rule
can't audit.

Since the interprocedural summary pass (summaries.py), a raw access is
additionally accepted without an ALLOW when the taint proof discharges
it: the enclosing function's summary-specialized solve is complete (not
truncated) and no access path read by the flagged statement is ever
attacker-derived — under hardened semantics where a call *without* a
summary is assumed to return tainted data, so the proof never leans on
an unanalyzed helper. This is what let the "checked on entry" ALLOWs in
decodeFrameView be deleted: frameSize's summary proves its return value
is guarded by its own kMaxPayloadBytes check.
"""

from __future__ import annotations

from typing import List

from engine import Finding

RULE_NAME = "codec-bounds"
DESCRIPTION = (
    "decodes in src/live/wire.* and src/report/ must use the bounded "
    "BitReader cursor, not raw pointer reads"
)

SCOPE_PREFIXES = (
    "src/live/wire.",
    "src/report/",
    "tests/analyze/fixtures/codec_bounds/",  # the rule's own test corpus
)

RAW_COPY_FNS = {"memcpy", "memmove", "strcpy", "strncpy", "bcopy"}


def _in_scope(rel: str) -> bool:
    return any(rel.startswith(p) for p in SCOPE_PREFIXES)


def check(ctx) -> List[Finding]:
    ck = ctx.cindex.CursorKind
    tk = ctx.cindex.TypeKind
    func_kinds = {
        ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR, ck.DESTRUCTOR,
        ck.FUNCTION_TEMPLATE, ck.CONVERSION_FUNCTION,
    }
    findings: List[Finding] = []
    seen = set()

    def pointer_type(cursor) -> bool:
        try:
            return cursor.type.get_canonical().kind == tk.POINTER
        except Exception:
            return False

    def integral_type(cursor) -> bool:
        try:
            k = cursor.type.get_canonical().kind
        except Exception:
            return False
        return tk.BOOL.value <= k.value <= tk.INT128.value

    def pointer_arith(cursor) -> bool:
        # cindex (pre-17) does not expose the operator opcode, so recognise
        # arithmetic structurally: pointer-typed result with exactly one
        # pointer operand and one integral operand (p + n / n + p). Plain
        # pointer assignment has two pointer operands and is not flagged.
        if not pointer_type(cursor):
            return False
        kids = list(cursor.get_children())
        if len(kids) != 2:
            return False
        ptr = [pointer_type(k) for k in kids]
        ints = [integral_type(k) for k in kids]
        return (ptr[0] and ints[1]) or (ints[0] and ptr[1])

    def visit(cursor, symbol: str) -> None:
        loc = cursor.location
        if loc.file is not None and not ctx.in_repo(loc.file.name):
            return
        if cursor.kind in func_kinds and cursor.spelling:
            symbol = cursor.spelling
        rel, line, col = ctx.location(cursor)
        if rel and _in_scope(rel):
            ctx.suppressions.load_file(
                ctx.repo_root + "/" + rel, rel
            )
            msg = None
            if cursor.kind == ck.CALL_EXPR and \
                    cursor.spelling in RAW_COPY_FNS:
                msg = ("unchecked %s from a frame payload — read through "
                       "BitReader" % cursor.spelling)
            elif cursor.kind == ck.ARRAY_SUBSCRIPT_EXPR:
                base = next(iter(cursor.get_children()), None)
                if base is not None and pointer_type(base):
                    msg = ("raw pointer subscript in codec scope — read "
                           "through BitReader")
            elif cursor.kind in (ck.BINARY_OPERATOR,
                                 ck.COMPOUND_ASSIGNMENT_OPERATOR) \
                    and pointer_arith(cursor):
                msg = ("raw pointer arithmetic in codec scope — read "
                       "through BitReader")
            if msg is not None:
                ident = (rel, line, col, msg)
                if ident not in seen:
                    seen.add(ident)
                    findings.append(
                        Finding(rule=RULE_NAME, file=rel, line=line,
                                column=col, message=msg, symbol=symbol)
                    )
        for child in cursor.get_children():
            visit(child, symbol)

    for _, tu in ctx.tus:
        for child in tu.cursor.get_children():
            visit(child, "")
    return _discharge_proven(ctx, findings)


def _discharge_proven(ctx, findings: List[Finding]) -> List[Finding]:
    """Drops findings the interprocedural taint proof discharges (see
    module docstring). Any failure to build the proof keeps every
    finding — the proof can only ever remove, never add."""
    try:
        from rules import wire_taint

        proofs = wire_taint.codec_proof(ctx)
    except Exception:
        return findings
    import engine as eng

    kept: List[Finding] = []
    for f in findings:
        proven = False
        for fp in proofs.get(f.file, ()):
            if not (fp.start <= f.line <= fp.end) or fp.truncated:
                continue
            reads = fp.line_paths.get(f.line)
            if reads is None:
                continue  # no IR statement here: stay conservative
            if not any(eng.paths_alias(r, t)
                       for r in reads for t in fp.tainted):
                proven = True
                break
        if not proven:
            kept.append(f)
    return kept

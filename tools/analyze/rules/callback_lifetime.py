"""callback-lifetime: a Reactor callback must not outlive the object it
captures.

Every lambda registered on ``Reactor::addFd`` / ``Reactor::addTimer`` that
captures ``this``, a reference, or a default capture is a dangling-dispatch
liability: if the capturing object dies first, the reactor invokes a
callback over freed memory. The rule demands one of two disciplines,
verified over the budget-bounded call graph:

* **owner discipline** — the registration passes an ``OwnerId`` (4th
  argument) minted by ``makeOwner()``, and ``retireOwner`` is reachable
  from the capturing class's destructor. Debug builds then also enforce
  the property at dispatch time (``MCI_DCHECK`` in the reactor), so the
  static check and the runtime check witness the same contract.
* **handle discipline** — the returned ``[[nodiscard]]`` handle is stored,
  and a matching ``removeFd`` / ``cancelTimer`` naming that handle member
  is reachable from the capturing class's destructor.

Registrations made from free functions (the ``*_main.cpp`` entry points)
are exempt: the reactor and the captures share one scope and die
together. Findings are keyed by registration site and escape route; they
are never baselined (baseline.NEVER_BASELINE) — an intentional exception
needs a written lifetime argument in an MCI-ANALYZE-ALLOW.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from engine import Finding

RULE_NAME = "callback-lifetime"
DESCRIPTION = (
    "Reactor callbacks capturing this/references must be deregistered "
    "(owner retire or handle removal) on every destructor path of the "
    "capturing object"
)
REQUIRES_CLANG = True

SCOPE_PREFIXES = (
    "src/",
    "tests/analyze/fixtures/callback_lifetime/",  # the rule's test corpus
)

_REMOVAL_OF = {"addFd": "removeFd", "addTimer": "cancelTimer"}


def _in_scope(rel: str) -> bool:
    return any(rel.startswith(p) for p in SCOPE_PREFIXES)


def _risky_capture(captures: Tuple[str, ...]) -> str:
    """Escape-route description when the capture list can dangle, else ''.
    ``[*this]`` copies and is safe; ``[=]`` copies too but still captures
    the raw ``this`` pointer inside a member function, so it counts."""
    for cap in captures:
        if cap == "this":
            return "captures this"
        if cap == "=":
            return "captures this (default [=] copy capture)"
        if cap == "&":
            return "captures by reference (default [&])"
        if cap.startswith("&"):
            return "captures %s by reference" % cap
    return ""


def _split_class(enclosing_name: str) -> Optional[Tuple[str, str]]:
    """(qualified class, simple class) for a method display name, or None
    for free functions / unresolved enclosers."""
    if "::" not in enclosing_name or enclosing_name.startswith("lambda@"):
        return None
    cls = enclosing_name.rsplit("::", 1)[0]
    return cls, cls.rsplit("::", 1)[-1]


def check(ctx) -> List[Finding]:
    graph = ctx.callgraph()

    def dtor_usrs(cls: str, simple: str) -> List[str]:
        want = "%s::~%s" % (cls, simple)
        return [usr for usr, node in graph.nodes.items()
                if node.name == want]

    def reached_calls(roots: List[str]):
        result = graph.reachable(roots, budget=ctx.call_budget,
                                 max_depth=ctx.call_depth)
        calls = []
        for usr in result.reached:
            node = graph.node(usr)
            if node is not None:
                calls.extend(node.calls)
        return calls, result.truncated

    findings: List[Finding] = []
    for reg in graph.registrations:
        if "Reactor" not in reg.receiver_class:
            continue
        if not _in_scope(reg.file):
            continue
        escape = _risky_capture(reg.captures)
        if not escape:
            continue  # value captures only: nothing to dangle

        split = _split_class(reg.enclosing_name)
        if split is None and not reg.enclosing_name.startswith("lambda@"):
            continue  # free function: reactor and captures share one scope

        owner_ok = bool(reg.owner_arg) and reg.owner_arg.strip() != "0"
        why = ""
        if split is not None:
            cls, simple = split
            dtors = dtor_usrs(cls, simple)
            if not dtors:
                why = ("%s has no destructor deregistering it" % cls)
            else:
                calls, truncated = reached_calls(dtors)
                if owner_ok:
                    if not any(c.callee_name == "retireOwner"
                               for c in calls):
                        why = ("owner-tagged (%s) but retireOwner is not "
                               "reachable from ~%s" % (reg.owner_arg,
                                                       simple))
                else:
                    removal = _REMOVAL_OF.get(reg.method, "removeFd")
                    member = reg.handle_text.replace("->", ".") \
                        .rsplit(".", 1)[-1] if reg.handle_text else ""
                    matched = member and any(
                        c.callee_name == removal and member in c.text
                        for c in calls)
                    if not reg.handle_text:
                        why = ("registration handle discarded and no "
                               "OwnerId passed")
                    elif not matched:
                        why = ("no %s(...%s...) reachable from ~%s"
                               % (removal, member, simple))
                if not why and truncated:
                    why = ("destructor walk truncated by budget; raise "
                           "--call-budget/--call-depth")
        else:
            # Registration made from inside another callback: the class is
            # not statically known. Owner tagging is accepted (the reactor
            # DCHECKs owner liveness at dispatch); anything else dangles.
            if not owner_ok:
                why = ("registered inside a callback without an OwnerId; "
                       "lifetime not verifiable")

        if why:
            findings.append(Finding(
                rule=RULE_NAME,
                file=reg.file,
                line=reg.line,
                column=reg.column,
                message="%s callback %s: %s"
                        % (reg.method, escape, why),
                symbol=reg.enclosing_name,
                detail="registration in %s; handle '%s'; owner '%s'"
                       % (reg.enclosing_name, reg.handle_text or "<none>",
                          reg.owner_arg or "<none>"),
            ))
    return findings

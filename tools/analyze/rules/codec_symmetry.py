"""codec-symmetry: every wire message's encoder and decoder must agree
field-for-field (name, width, order).

Pure-text rule (REQUIRES_CLANG = False): the field sequences are
extracted by tools/analyze/codec_schema.py from the stylized
BitWriter/BitReader codec idiom, so this gate runs even on machines
where the libclang rules skip. The same extraction feeds the checked-in
docs/wire_schema.json and the generated tables in docs/protocols.md
(drift on either fails `codec_schema.py --check`).
"""

from __future__ import annotations

import os
from typing import List

from engine import Finding

RULE_NAME = "codec-symmetry"
DESCRIPTION = (
    "encode/decode field sequences (name, width, order) must match for "
    "every wire message"
)
REQUIRES_CLANG = False

SCOPE_PREFIXES = (
    "src/live/wire.",
    "src/live/shard_map.",
    "tests/analyze/fixtures/codec_symmetry/",  # the rule's own test corpus
)


def _in_scope(rel: str) -> bool:
    return any(rel.startswith(p) for p in SCOPE_PREFIXES)


def check(ctx) -> List[Finding]:
    import codec_schema

    rels = [r for r in getattr(ctx, "targets", []) if _in_scope(r)]
    extracted = codec_schema.extract_paths(ctx.repo_root, rels)
    for rel in rels:
        ctx.suppressions.load_file(os.path.join(ctx.repo_root, rel), rel)

    findings: List[Finding] = []
    for msg, why in codec_schema.compare(extracted):
        locs = extracted.get(msg, {}).get("locs", {})
        rel, line = locs.get("decode") or locs.get("encode") or ("", 0)
        findings.append(Finding(
            rule=RULE_NAME, file=rel, line=line, column=1,
            message=why, symbol=msg,
        ))
    return findings

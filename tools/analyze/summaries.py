"""Interprocedural taint via per-function transfer summaries.

A ``FunctionSummary`` is the function's taint transfer relation, computed
from its lowered CFG with a handful of ``engine.solve_taint`` runs:

* one unseeded run — does a source *inside* the function taint its return
  value (``ret_tainted``), net of the function's own guards?
* one run per parameter, seeded with that parameter tainted — does the
  parameter flow to the return value (``ret_from_params``) or into a sink
  (``param_sinks``)?

Summaries propagate bottom-up over the (name-resolved) call structure:
``specialize`` rewrites a caller's CFG so that calls to summarized
functions use the summary instead of the conservative intraprocedural
approximation — a call whose summary proves the return value guarded stops
tainting the caller, and a call that passes a tainted argument into a
callee sink becomes a sink in the caller, carrying the cross-function
chain in ``Sink.via``. Recursive cycles converge by bounded rounds: the
lattice is finite and every merge is monotone, so ``max_rounds`` caps work
without losing soundness (a missing summary just leaves the conservative
intraprocedural treatment in place).

Everything here is pure Python over ``engine`` IR — no libclang — so the
whole layer is unit-testable on hand-built CFGs (tests/analyze).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import engine


@dataclasses.dataclass(frozen=True)
class ParamSink:
    """Parameter ``param`` (0-based) reaches a ``kind`` sink inside the
    function. ``via`` holds deeper cross-function steps when the sink was
    itself folded in from a callee's summary."""

    param: int
    kind: str
    desc: str
    line: int = 0
    via: Tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class FunctionSummary:
    """One function's taint transfer facts, keyed by simple name."""

    name: str
    file: str = ""
    line: int = 0
    params: Tuple[str, ...] = ()
    # A source inside the function taints the return value (net of the
    # function's own guards — a fully-guarded read does NOT set this).
    ret_tainted: bool = False
    ret_source_desc: str = ""
    # Parameter indices whose taint flows through to the return value.
    ret_from_params: Tuple[int, ...] = ()
    param_sinks: Tuple[ParamSink, ...] = ()
    # Any solve hit its step budget; callers should not treat absence of
    # facts as proof.
    truncated: bool = False


class SummaryCache:
    """Memoizes ``compute_summary`` keyed by the function identity plus
    the exact callee summaries it depended on. Across propagation rounds a
    function whose callees did not change re-uses its summary — the
    ``hits`` counter is surfaced in the rule's stats line."""

    def __init__(self) -> None:
        self._store: Dict[tuple, FunctionSummary] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[FunctionSummary]:
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
        else:
            self.misses += 1
        return found

    def put(self, key: tuple, summary: FunctionSummary) -> None:
        self._store[key] = summary


def _callee_names(cfg: engine.Cfg) -> List[str]:
    names = set()
    for node in cfg.nodes.values():
        for cf in node.stmt.calls:
            names.add(cf.callee)
    return sorted(names)


def _specialize_stmt(stmt: engine.Stmt,
                     table: Dict[str, FunctionSummary]) -> engine.Stmt:
    calls_by_name: Dict[str, engine.CallFact] = {}
    for cf in stmt.calls:
        calls_by_name.setdefault(cf.callee, cf)

    new_sinks = list(stmt.sinks)
    changed = False
    for cf in stmt.calls:
        s = table.get(cf.callee)
        if s is None:
            continue
        for ps in s.param_sinks:
            if ps.param >= len(cf.args):
                continue
            paths, direct = cf.args[ps.param]
            if not paths and not direct:
                continue  # the argument can't carry caller taint
            step = "%s:%d: in %s: %s" % (s.file, ps.line, s.name, ps.desc)
            new_sinks.append(engine.Sink(
                kind=ps.kind,
                desc="%s [argument %d of %s()]" % (
                    ps.desc, ps.param + 1, s.name),
                paths=paths, direct=direct and not paths,
                via=(step,) + ps.via))
            changed = True

    new_defs = list(stmt.defs)
    for i, d in enumerate(new_defs):
        s = table.get(d.from_call) if d.from_call else None
        if s is None:
            continue
        cf = calls_by_name.get(d.from_call)
        if cf is None:
            continue
        # The def's RHS is exactly this call (from_call is only set then):
        # replace the conservative all-args approximation with the
        # summary's transfer. An unsummarized callee keeps the old Def.
        uses: List[str] = []
        has_source = s.ret_tainted
        desc = s.ret_source_desc if s.ret_tainted else ""
        for pi in s.ret_from_params:
            if pi >= len(cf.args):
                continue
            for p in cf.args[pi][0]:
                if p not in uses:
                    uses.append(p)
            if cf.args[pi][1]:
                has_source = True
                desc = desc or "%s() argument %d" % (s.name, pi + 1)
        if s.ret_tainted and not desc:
            desc = "%s() [summary]" % s.name
        new_defs[i] = dataclasses.replace(
            d, uses=tuple(uses), has_source=has_source, source_desc=desc)
        changed = True

    if not changed:
        return stmt
    return dataclasses.replace(stmt, sinks=tuple(new_sinks),
                               defs=tuple(new_defs))


def specialize(cfg: engine.Cfg,
               table: Dict[str, FunctionSummary]) -> engine.Cfg:
    """A copy of ``cfg`` with every call to a summarized function replaced
    by the summary's transfer facts. ``cfg`` itself is never mutated."""
    if not table:
        return cfg
    out = engine.Cfg()
    for sid in cfg.nodes:  # insertion order == lowering order
        out.add(_specialize_stmt(cfg.nodes[sid].stmt, table))
    out.entry = cfg.entry
    for sid, node in cfg.nodes.items():
        for dst, label in node.succs:
            out.edge(sid, dst, label)
    return out


def _ret_taint(cfg: engine.Cfg,
               result: engine.TaintResult) -> Optional[str]:
    """Source description when any reachable ``return expr`` leaves the
    synthetic RETURN_PATH tainted, else None."""
    for sid in sorted(cfg.nodes):
        node = cfg.nodes[sid]
        ret_defs = [d for d in node.stmt.defs
                    if d.path == engine.RETURN_PATH]
        if not ret_defs:
            continue
        state = result.ins.get(sid)
        if state is None:
            continue  # unreachable return
        out = engine._transfer(node.stmt, state)
        if engine.any_alias(engine.RETURN_PATH, out) is not None:
            return ret_defs[0].source_desc or "returned decoded value"
    return None


def compute_summary(fcfg, table: Dict[str, FunctionSummary],
                    cache: Optional[SummaryCache] = None) -> FunctionSummary:
    """Summary of one ``callgraph.FunctionCfg`` given the callee summaries
    currently in ``table`` (missing callees stay conservative)."""
    # Self-recursive calls use the previous round's summary of this very
    # function — that is the bounded-rounds fixpoint for cycles.
    deps = tuple((n, table[n]) for n in _callee_names(fcfg.cfg)
                 if n in table)
    key = (fcfg.file, fcfg.line, fcfg.name, deps)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit

    cfg = specialize(fcfg.cfg, dict(deps))
    base = engine.solve_taint(cfg)
    base_idents = {(h.stmt.sid, h.sink.kind, h.sink.desc)
                   for h in base.hits}
    truncated = base.truncated
    ret_desc = _ret_taint(cfg, base)
    ret_tainted = ret_desc is not None

    ret_from: List[int] = []
    psinks: List[ParamSink] = []
    for i, p in enumerate(fcfg.params):
        seeded = engine.solve_taint(cfg, seed={p: ()})
        truncated = truncated or seeded.truncated
        if not ret_tainted and _ret_taint(cfg, seeded) is not None:
            ret_from.append(i)
        for h in seeded.hits:
            ident = (h.stmt.sid, h.sink.kind, h.sink.desc)
            if ident in base_idents:
                continue  # fires without the seed: intrinsic, not param
            psinks.append(ParamSink(
                param=i, kind=h.sink.kind, desc=h.sink.desc,
                line=h.stmt.line, via=h.sink.via))

    summary = FunctionSummary(
        name=fcfg.name, file=fcfg.file, line=fcfg.line,
        params=tuple(fcfg.params), ret_tainted=ret_tainted,
        ret_source_desc=ret_desc or "",
        ret_from_params=tuple(ret_from),
        param_sinks=tuple(dict.fromkeys(psinks)),
        truncated=truncated)
    if cache is not None:
        cache.put(key, summary)
    return summary


def merge_summaries(old: Optional[FunctionSummary],
                    new: FunctionSummary) -> FunctionSummary:
    """Monotone merge for same-name definitions (overloads, methods of
    different classes) and across propagation rounds: facts only grow."""
    if old is None:
        return new
    ret_from = tuple(sorted(set(old.ret_from_params)
                            | set(new.ret_from_params)))
    psinks = tuple(dict.fromkeys(old.param_sinks + new.param_sinks))
    return FunctionSummary(
        name=old.name, file=old.file, line=old.line,
        params=old.params if len(old.params) >= len(new.params)
        else new.params,
        ret_tainted=old.ret_tainted or new.ret_tainted,
        ret_source_desc=old.ret_source_desc or new.ret_source_desc,
        ret_from_params=ret_from, param_sinks=psinks,
        truncated=old.truncated or new.truncated)


@dataclasses.dataclass
class BuildStats:
    functions: int = 0
    rounds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


def build_summaries(fcfgs, max_rounds: int = 4) \
        -> Tuple[Dict[str, FunctionSummary], BuildStats]:
    """Bottom-up summary table over all lowered functions.

    Functions are visited callees-first (postorder over name-level call
    edges) so most of the graph converges in round one; rounds repeat only
    until a fixpoint or ``max_rounds`` (recursive cycles stop growing by
    monotonicity, typically in two rounds)."""
    by_name: Dict[str, List] = {}
    for f in fcfgs:
        by_name.setdefault(f.name, []).append(f)

    calls: Dict[str, List[str]] = {}
    for name, funcs in by_name.items():
        outs = set()
        for f in funcs:
            outs.update(n for n in _callee_names(f.cfg) if n in by_name)
        calls[name] = sorted(outs)

    order: List[str] = []
    state: Dict[str, int] = {}  # 0 in-stack, 1 done

    def dfs(name: str) -> None:
        state[name] = 0
        for callee in calls[name]:
            if callee not in state:
                dfs(callee)
        state[name] = 1
        order.append(name)

    for name in sorted(by_name):
        if name not in state:
            dfs(name)

    table: Dict[str, FunctionSummary] = {}
    cache = SummaryCache()
    stats = BuildStats(functions=len(fcfgs))
    for _ in range(max(1, max_rounds)):
        stats.rounds += 1
        changed = False
        for name in order:
            for f in by_name[name]:
                s = compute_summary(f, table, cache)
                merged = merge_summaries(table.get(name), s)
                if merged != table.get(name):
                    table[name] = merged
                    changed = True
        if not changed:
            break
    stats.cache_hits = cache.hits
    stats.cache_misses = cache.misses
    return table, stats

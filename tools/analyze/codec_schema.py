"""Wire-schema extraction for the codec-symmetry rule and the docs drift
gate.

Parses the stylized BitWriter/BitReader codec code in src/live/wire.cpp
and src/live/shard_map.cpp *textually* (no libclang — this gate must run
everywhere, including machines where the clang rules skip) and recovers,
for every message, the ordered field sequence each side implements:

  encoder:  w.write(m.field, N);            -> {name: field, bits: N}
            w.write(m.items.size(), 16);    -> {name: items.count, ...}
            for (T e : m.items) w.write(e.x, N)  -> items[].x
            m.shardMap.encodeTo(w);         -> submessage field
  decoder:  m.field = ...(r.read(N));, count-bounded push_back loops,
            Type::decodeFrom(r, ...) submessage calls.

Encode/decode asymmetry (missing field, width mismatch, reordering) is a
finding; the canonical schema is written to docs/wire_schema.json and the
tables between the wire-schema markers in docs/protocols.md are generated
from it, so the documentation cannot drift from the code.

The parser leans on the repo's codec idiom (one field per line, literal
widths, count-then-loop groups). That is a feature: codec code that the
extractor cannot follow is codec code reviewers cannot follow either, and
the drift gate fails loudly rather than guessing.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Dict, List, Optional, Tuple

SCHEMA_VERSION = 1

# Codec files the real-tree schema is extracted from.
WIRE_SOURCES = ("src/live/wire.cpp", "src/live/shard_map.cpp")

# Header holding the FrameType enum; each enumerator's doc comment names
# the direction the frame travels ("client -> server: my UDP port"), and
# the extracted table feeds the handler-coverage rule.
WIRE_HEADER = "src/live/wire.hpp"

# Messages excluded from pairing: the frame envelope has a hand-rolled
# byte-level encoder (encodeFrame does not use BitWriter), so its decoder
# is not expected to have a BitWriter mirror. FrameView is the in-place
# decode of that same envelope (decodeFrameView), not a message of its own.
ENVELOPE_MESSAGES = ("Frame", "FrameView")

SCHEMA_PATH = "docs/wire_schema.json"
DOCS_PATH = "docs/protocols.md"
DOCS_BEGIN = ("<!-- BEGIN GENERATED: wire-schema "
              "(tools/analyze/codec_schema.py --write; do not hand-edit) -->")
DOCS_END = "<!-- END GENERATED: wire-schema -->"

_ENCODE_FN_RE = re.compile(
    r"std::vector<std::uint8_t>\s+encode(\w+?)(?:Into)?\s*\(")
# Arena-style encoders write into a caller-supplied BitWriter so the hot
# path can reuse one frame buffer (the swarm mux); the allocating
# encodeX() wrapper delegates to encodeXInto() and writes no fields of
# its own.
_ENCODE_INTO_RE = re.compile(
    r"void\s+encode(\w+)Into\s*\(")
_ENCODE_TO_RE = re.compile(
    r"void\s+(\w+)::encodeTo\s*\(\s*report::BitWriter&")
_DECODE_FN_RE = re.compile(
    r"std::optional<[\w:]+>\s+(?:(\w+)::)?decode(\w*)\s*\(")
_WRITE_RE = re.compile(r"\b\w+\.write\((.*),\s*(\d+)\)\s*;")
_READ_RE = re.compile(r"\b\w+\.read\((\d+)\)")
_RANGE_FOR_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?[\w:<>]+[&\s]+(\w+)\s*:\s*"
    r"(?:m\.)?(\w+?)_?\s*\)")
_COUNT_FOR_RE = re.compile(
    r"for\s*\(.*;\s*\w+\s*<\s*(\w+)\s*(?:&&[^;]*)?;")
_PUSH_BACK_RE = re.compile(r"(?:m\.)?(\w+?)_?\.push_back\(")
_ASSIGN_READ_RE = re.compile(r"(?:m\.)?([\w.]+?)_?\s*=[^=].*\.read\(")
_DECL_READ_RE = re.compile(
    r"(?:const\s+)?[\w:<>]+\s+(\w+)\s*=[^=].*\.read\(")
_CHECK_READ_RE = re.compile(
    r"if\s*\(\s*\w+\.read\((\d+)\)\s*!=\s*(\w+)\s*\)")
_SUB_DECODE_RE = re.compile(r"=\s*(\w+)::decodeFrom\s*\(")
_SUB_ENCODE_RE = re.compile(r"(?:m\.)?([\w.]+)\.encodeTo\(")
_MOVE_ASSIGN_RE = re.compile(
    r"(?:m\.)?(\w+)\s*=\s*std::move\(\*(\w+)\)")
_ELEM_DECL_RE = re.compile(r"^\s*[\w:]+\s+(\w+)\s*;\s*$")
_KCONST_RE = re.compile(r"^k([A-Z]\w*)$")
_FRAME_ENUM_BEGIN_RE = re.compile(r"enum\s+class\s+FrameType\b")
_FRAME_ENUMERATOR_RE = re.compile(
    r"^\s*(k[A-Z]\w*)\s*=\s*(\d+)\s*,?\s*/+<?\s*([^:]+?)\s*:\s*(.*?)\s*$")
_COUNTLIKE_RE = re.compile(r"(?:([\w.]+?)_?\.size\(\)|(\w*[Cc]ount)\(\))$")


def _lcfirst(s: str) -> str:
    return s[:1].lower() + s[1:] if s else s


def _strip_expr(expr: str) -> str:
    """Unwraps casts / conversion calls and ternaries down to the core
    operand: static_cast<T>(doubleBits(m.x)) -> m.x."""
    expr = expr.strip()
    if "?" in expr:
        expr = expr.split("?")[0].strip()
    while True:
        # Unwrap wrapper calls (casts, doubleBits, quantize) but not
        # zero-argument getters like shardCount().
        m = re.match(r"^[\w:]+(?:<[^<>]*>)?\((.+)\)$", expr)
        if not m:
            break
        expr = m.group(1).strip()
    for tail in ("!= 0", "== 0"):
        if expr.endswith(tail):
            expr = expr[: -len(tail)].strip()
    return expr


def _field_name(expr: str, elem_var: str, group: str) -> str:
    expr = _strip_expr(expr)
    if group and elem_var:
        if expr == elem_var:
            return "%s[]" % group
        if expr.startswith(elem_var + "."):
            return "%s[].%s" % (group, expr[len(elem_var) + 1:])
    if expr.startswith("m."):
        expr = expr[2:]
    k = _KCONST_RE.match(expr)
    if k:
        return _lcfirst(k.group(1))
    expr = expr.rstrip("_")
    return re.sub(r"[^\w.\[\]]", "", expr) or "<unnamed>"


def _match_braces(lines: List[str], start: int) -> int:
    """Index one past the line that closes the block opened at ``start``."""
    depth = 0
    opened = False
    for i in range(start, len(lines)):
        for ch in lines[i]:
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
        if opened and depth <= 0:
            return i + 1
    return len(lines)


def _function_bodies(text: str) -> List[Tuple[str, str, str, int]]:
    """Yields (role, message, body, line) for every codec function in
    ``text``; role is 'encode' or 'decode'."""
    out: List[Tuple[str, str, str, int]] = []
    for regex, role in ((_ENCODE_FN_RE, "encode"),
                        (_ENCODE_INTO_RE, "encode"),
                        (_ENCODE_TO_RE, "encode"),
                        (_DECODE_FN_RE, "decode")):
        for m in regex.finditer(text):
            if regex is _DECODE_FN_RE:
                cls, suffix = m.group(1), m.group(2)
                msg = cls if suffix in ("From", "") and cls else suffix
                if not msg:
                    continue
            else:
                msg = m.group(1)
            open_brace = text.find("{", m.end())
            if open_brace < 0:
                continue
            depth = 0
            for i in range(open_brace, len(text)):
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                    if depth == 0:
                        line = text.count("\n", 0, m.start()) + 1
                        out.append((role, msg, text[open_brace + 1:i],
                                    line))
                        break
    return out


class _Fields:
    """Ordered field accumulator with count-field back-patching."""

    def __init__(self) -> None:
        self.fields: List[dict] = []
        # name -> index of a count-like field awaiting its group name
        self.pending_counts: Dict[str, int] = {}

    def add(self, name: str, bits: Optional[int] = None,
            submessage: Optional[str] = None) -> int:
        f: dict = {"name": name}
        if bits is not None:
            f["bits"] = bits
        if submessage is not None:
            f["submessage"] = submessage
        self.fields.append(f)
        return len(self.fields) - 1

    def resolve_count(self, key: str, group: str) -> None:
        idx = self.pending_counts.pop(key, None)
        if idx is not None:
            self.fields[idx]["name"] = "%s.count" % group


def _parse_encoder(body: str, acc: _Fields) -> None:
    lines = body.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        rf = _RANGE_FOR_RE.search(line)
        if rf:
            elem, group = rf.group(1), rf.group(2)
            if group.startswith("m."):
                group = group[2:]
            acc.resolve_count("@next", group)
            if "{" in line:
                end = _match_braces(lines, i)
                for inner in lines[i + 1:end]:
                    _encode_line(inner, acc, elem, group)
                i = end
                continue
            _encode_line(line[rf.end():], acc, elem, group)
            i += 1
            continue
        _encode_line(line, acc, "", "")
        i += 1


def _encode_line(line: str, acc: _Fields, elem: str, group: str) -> None:
    w = _WRITE_RE.search(line)
    if w:
        expr, bits = w.group(1), int(w.group(2))
        core = _strip_expr(expr)
        if not group and _COUNTLIKE_RE.search(core):
            idx = acc.add(_field_name(expr, elem, group), bits)
            acc.pending_counts["@next"] = idx
            return
        acc.add(_field_name(expr, elem, group), bits)
        return
    sub = _SUB_ENCODE_RE.search(line)
    if sub:
        name = sub.group(1)
        if name.startswith("m."):
            name = name[2:]
        acc.add(name, submessage="*")


def _parse_decoder(body: str, acc: _Fields) -> None:
    lines = body.splitlines()
    sub_vars: Dict[str, int] = {}  # local var -> submessage field index
    i = 0
    while i < len(lines):
        line = lines[i]
        cf = _COUNT_FOR_RE.search(line)
        if cf:
            bound = cf.group(1)
            end = _match_braces(lines, i) if "{" in line else i + 1
            block = lines[i + 1:end] if "{" in line else [line[cf.end():]]
            group = ""
            elem = ""
            for inner in block:
                pb = _PUSH_BACK_RE.search(inner)
                if pb and not group:
                    group = pb.group(1)
                ed = _ELEM_DECL_RE.match(inner)
                if ed and not elem:
                    elem = ed.group(1)
            acc.resolve_count(bound, group or "<group>")
            for inner in block:
                _decode_line(inner, acc, elem, group or "<group>",
                             sub_vars)
            i = end
            continue
        _decode_line(line, acc, "", "", sub_vars)
        i += 1
    del sub_vars


def _decode_line(line: str, acc: _Fields, elem: str, group: str,
                 sub_vars: Dict[str, int]) -> None:
    if ".fits(" in line or ".skip(" in line:
        return
    ck = _CHECK_READ_RE.search(line)
    if ck:
        bits, const = int(ck.group(1)), ck.group(2)
        k = _KCONST_RE.match(const)
        acc.add(_lcfirst(k.group(1)) if k else const, bits)
        return
    sub = _SUB_DECODE_RE.search(line)
    if sub:
        typ = sub.group(1)
        var = re.search(r"(\w+)\s*=\s*%s::decodeFrom" % typ, line)
        idx = acc.add(_lcfirst(typ), submessage=typ)
        if var:
            sub_vars[var.group(1)] = idx
        return
    mv = _MOVE_ASSIGN_RE.search(line)
    if mv and mv.group(2) in sub_vars:
        acc.fields[sub_vars[mv.group(2)]]["name"] = mv.group(1)
        return
    rd = _READ_RE.search(line)
    if not rd:
        return
    bits = int(rd.group(1))
    assign = _ASSIGN_READ_RE.search(line)
    if assign:
        target = assign.group(1)
        if elem and target.startswith(elem + "."):
            acc.add("%s[].%s" % (group, target[len(elem) + 1:]), bits)
            return
        decl = _DECL_READ_RE.search(line)
        if decl:
            var = decl.group(1)
            idx = acc.add(var, bits)
            acc.pending_counts[var] = idx
            return
        acc.add(target, bits)
        return
    if "push_back(" in line and group:
        acc.add("%s[]" % group, bits)
        return
    # A read whose value is consumed anonymously (rare); keep the slot so
    # widths/order still line up.
    acc.add("<anonymous>", bits)


def extract_text(text: str, into: Dict[str, Dict[str, List[dict]]],
                 rel: str = "") -> None:
    for role, msg, body, line in _function_bodies(text):
        acc = _Fields()
        if role == "encode":
            _parse_encoder(body, acc)
        else:
            _parse_decoder(body, acc)
        sides = into.setdefault(msg, {})
        if not acc.fields and sides.get(role):
            # A delegating wrapper (encodeX -> encodeXInto) writes no
            # fields itself; keep the side that does.
            continue
        sides[role] = acc.fields
        sides.setdefault("locs", {})[role] = (rel, line)


def extract_frames(text: str) -> Dict[str, dict]:
    """FrameType enumerators with wire value, direction, and doc from the
    enum's per-enumerator comments. An enumerator without a
    "direction: doc" comment is a hard error — the handler-coverage rule
    cannot place an undocumented frame, so the gate refuses to guess."""
    frames: Dict[str, dict] = {}
    m = _FRAME_ENUM_BEGIN_RE.search(text)
    if m is None:
        return frames
    body_end = text.find("};", m.end())
    body = text[m.end():body_end if body_end >= 0 else len(text)]
    for line in body.splitlines():
        em = _FRAME_ENUMERATOR_RE.match(line)
        if em:
            frames[em.group(1)] = {
                "value": int(em.group(2)),
                "direction": em.group(3),
                "doc": em.group(4),
            }
        elif re.match(r"^\s*k[A-Z]\w*\s*=", line):
            raise ValueError(
                "FrameType enumerator lacks a 'direction: doc' comment: %r"
                % line.strip())
    return frames


def extract_frames_path(repo_root: str) -> Dict[str, dict]:
    path = os.path.join(repo_root, WIRE_HEADER)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            return extract_frames(fh.read())
    except OSError:
        return {}


def extract_paths(repo_root: str, rels) -> Dict[str, Dict[str, List[dict]]]:
    out: Dict[str, Dict[str, List[dict]]] = {}
    for rel in rels:
        path = os.path.join(repo_root, rel)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                extract_text(fh.read(), out, rel)
        except OSError:
            pass
    return out


# -- comparison -------------------------------------------------------------


def _field_desc(f: dict) -> str:
    if "submessage" in f:
        return "%s:<%s>" % (f["name"], f["submessage"])
    return "%s:%d" % (f["name"], f.get("bits", 0))


def compare(extracted: Dict[str, Dict[str, List[dict]]]) \
        -> List[Tuple[str, str]]:
    """Returns (message, divergence description) pairs; empty when every
    encode/decode pair is field-for-field symmetric."""
    problems: List[Tuple[str, str]] = []
    for msg in sorted(extracted):
        if msg in ENVELOPE_MESSAGES:
            continue
        sides = extracted[msg]
        enc, dec = sides.get("encode"), sides.get("decode")
        if enc is None or dec is None:
            missing = "encoder" if enc is None else "decoder"
            problems.append((msg, "message has no %s" % missing))
            continue
        for i in range(max(len(enc), len(dec))):
            if i >= len(enc):
                problems.append((msg, "decoder reads field %s the encoder "
                                 "never writes" % _field_desc(dec[i])))
                break
            if i >= len(dec):
                problems.append((msg, "encoder writes field %s the decoder "
                                 "never reads" % _field_desc(enc[i])))
                break
            e, d = enc[i], dec[i]
            e_sub, d_sub = "submessage" in e, "submessage" in d
            if e["name"] != d["name"]:
                problems.append(
                    (msg, "field order/name diverges at position %d: "
                     "encoder %s vs decoder %s"
                     % (i, _field_desc(e), _field_desc(d))))
                break
            if e_sub != d_sub:
                problems.append(
                    (msg, "field %r is a submessage on one side only"
                     % e["name"]))
                break
            if not e_sub and e.get("bits") != d.get("bits"):
                problems.append(
                    (msg, "width mismatch on field %r: encoder writes %d "
                     "bits, decoder reads %d"
                     % (e["name"], e.get("bits", 0), d.get("bits", 0))))
                break
    return problems


def build_schema(extracted: Dict[str, Dict[str, List[dict]]],
                 frames: Optional[Dict[str, dict]] = None) -> dict:
    """Canonical schema from the encoder sequences (the writer defines the
    wire; compare() guarantees the reader agrees). ``frames`` adds the
    FrameType table (value/direction/doc) the handler-coverage rule keys
    off."""
    messages = {}
    for msg in sorted(extracted):
        if msg in ENVELOPE_MESSAGES:
            continue
        enc = extracted[msg].get("encode")
        dec = extracted[msg].get("decode") or []
        if enc is None:
            continue
        fields = []
        for i, f in enumerate(enc):
            out = dict(f)
            # The decoder names submessage types; graft them onto the
            # encoder's wildcard so the schema is concrete.
            if out.get("submessage") == "*" and i < len(dec) \
                    and "submessage" in dec[i]:
                out["submessage"] = dec[i]["submessage"]
            fields.append(out)
        messages[msg] = {"fields": fields}
    schema = {"version": SCHEMA_VERSION, "messages": messages}
    if frames:
        schema["frames"] = frames
    return schema


# -- docs -------------------------------------------------------------------


def render_docs(schema: dict) -> str:
    lines = [DOCS_BEGIN, ""]
    lines.append("Field tables below are extracted from the codec code by "
                 "`tools/analyze/codec_schema.py`; `--check` fails CI when "
                 "code and table disagree. Regenerate with `--write`.")
    frames = schema.get("frames")
    if frames:
        lines.append("")
        lines.append("#### Frame types")
        lines.append("")
        lines.append("| value | type | direction | carries |")
        lines.append("|-------|------|-----------|---------|")
        for name in sorted(frames, key=lambda n: frames[n]["value"]):
            f = frames[name]
            lines.append("| %d | `%s` | %s | %s |"
                         % (f["value"], name, f["direction"], f["doc"]))
    for msg in sorted(schema["messages"]):
        lines.append("")
        lines.append("#### %s" % msg)
        lines.append("")
        lines.append("| # | field | width |")
        lines.append("|---|-------|-------|")
        for i, f in enumerate(schema["messages"][msg]["fields"]):
            if "submessage" in f:
                width = "`%s` fields" % f["submessage"]
            else:
                width = "%d bits" % f.get("bits", 0)
            lines.append("| %d | `%s` | %s |" % (i, f["name"], width))
    lines.extend(["", DOCS_END])
    return "\n".join(lines)


def _splice_docs(text: str, rendered: str) -> Optional[str]:
    begin = text.find(DOCS_BEGIN)
    end = text.find(DOCS_END)
    if begin < 0 or end < 0:
        return None
    return text[:begin] + rendered + text[end + len(DOCS_END):]


# -- CLI --------------------------------------------------------------------


def _repo_default() -> str:
    return os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="wire-schema extraction / drift gate")
    ap.add_argument("--repo", default=_repo_default())
    ap.add_argument("--check", action="store_true",
                    help="verify symmetry and that the checked-in schema "
                    "and docs tables match the code (exit 1 on drift)")
    ap.add_argument("--write", action="store_true",
                    help="rewrite docs/wire_schema.json and the generated "
                    "docs/protocols.md section")
    ap.add_argument("--json", action="store_true",
                    help="print the extracted schema")
    args = ap.parse_args(argv)

    extracted = extract_paths(args.repo, WIRE_SOURCES)
    problems = compare(extracted)
    for msg, why in problems:
        print("codec-symmetry: %s: %s" % (msg, why), file=sys.stderr)
    schema = build_schema(extracted, extract_frames_path(args.repo))

    if args.json:
        json.dump(schema, sys.stdout, indent=2, sort_keys=True)
        print()

    schema_path = os.path.join(args.repo, SCHEMA_PATH)
    docs_path = os.path.join(args.repo, DOCS_PATH)
    rendered = render_docs(schema)

    if args.write:
        with open(schema_path, "w", encoding="utf-8") as fh:
            json.dump(schema, fh, indent=2, sort_keys=True)
            fh.write("\n")
        with open(docs_path, "r", encoding="utf-8") as fh:
            text = fh.read()
        spliced = _splice_docs(text, rendered)
        if spliced is None:
            print("codec-schema: %s lacks the wire-schema markers"
                  % DOCS_PATH, file=sys.stderr)
            return 2
        with open(docs_path, "w", encoding="utf-8") as fh:
            fh.write(spliced)
        print("codec-schema: wrote %s and %s" % (SCHEMA_PATH, DOCS_PATH))

    if args.check:
        drift = bool(problems)
        try:
            with open(schema_path, "r", encoding="utf-8") as fh:
                on_disk = json.load(fh)
        except (OSError, ValueError):
            on_disk = None
        if on_disk != schema:
            print("codec-schema: %s is stale; run --write" % SCHEMA_PATH,
                  file=sys.stderr)
            drift = True
        try:
            with open(docs_path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            text = ""
        begin = text.find(DOCS_BEGIN)
        end = text.find(DOCS_END)
        current = text[begin:end + len(DOCS_END)] if begin >= 0 and end >= 0 \
            else None
        if current != rendered:
            print("codec-schema: generated section of %s is stale; "
                  "run --write" % DOCS_PATH, file=sys.stderr)
            drift = True
        if drift:
            return 1
        print("codec-schema: %d message(s) symmetric, schema and docs "
              "up to date" % len(schema["messages"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Perf-regression report: run the kernel bench suite, merge a baseline,
and enforce the zero-allocation steady-state gate.

Drives `bench_main` (the standalone JSON emitter in bench/) and optionally
the google-benchmark micro binaries, then writes a single BENCH_kernel.json
summarising items/sec, simulated-seconds-per-wall-second, and
allocations-per-event. When `--baseline` points at a previous report (or a
raw bench_main dump), each metric gains a `speedup` field computed against
it, so a perf regression is visible as speedup < 1 in review.

Exit status:
  0  report written, allocation gate passed
  1  steady-state allocations per event/item exceeded --max-allocs (default 0)
  2  usage or subprocess error

Typical use (see docs/performance.md):

    cmake --preset release && cmake --build --preset release -j
    python3 tools/bench_report.py --build build-release --out BENCH_kernel.json

CI (`bench-smoke`) runs the same with `--mintime 0.05` and a short
`--simtime` so the gate stays cheap.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


def run_bench_main(build: Path, mintime: float, simtime: float) -> dict:
    exe = build / "bench" / "bench_main"
    if not exe.exists():
        sys.exit(f"bench_report: {exe} not found — build the repo first")
    cmd = [str(exe), "--mintime", str(mintime), "--simtime", str(simtime)]
    print("bench_report: running", " ".join(cmd), file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(f"bench_report: bench_main failed ({proc.returncode})")
    return json.loads(proc.stdout)


def run_google_micro(build: Path, name: str, min_time: float) -> list[dict]:
    """Runs a google-benchmark binary, tolerating both the old plain-double
    and the new duration-suffixed --benchmark_min_time syntax."""
    exe = build / "bench" / name
    if not exe.exists():
        print(f"bench_report: {exe} not found; skipping", file=sys.stderr)
        return []
    for arg in (f"--benchmark_min_time={min_time}s",
                f"--benchmark_min_time={min_time}"):
        cmd = [str(exe), arg, "--benchmark_format=json"]
        print("bench_report: running", " ".join(cmd), file=sys.stderr)
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 0:
            try:
                return json.loads(proc.stdout).get("benchmarks", [])
            except json.JSONDecodeError:
                break
    print(f"bench_report: {name} failed under both min_time syntaxes; "
          "skipping", file=sys.stderr)
    return []


def load_baseline(path: Path) -> dict[str, dict[str, float]]:
    """Accepts either a previous BENCH_kernel.json or a raw bench_main dump;
    returns {bench name: {metric: value}}."""
    doc = json.loads(path.read_text())
    out: dict[str, dict[str, float]] = {}
    for row in doc.get("benches", []):
        name = row.get("name")
        if not name:
            continue
        out[name] = {
            k: v for k, v in row.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
    return out


# Metrics where larger is faster; speedup = after / before.
RATE_METRICS = ("items_per_s", "sim_s_per_wall_s")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--build", type=Path, default=Path("build"),
                        help="build directory containing bench/ binaries")
    parser.add_argument("--out", type=Path, default=Path("BENCH_kernel.json"))
    parser.add_argument("--baseline", type=Path, default=None,
                        help="previous BENCH_kernel.json (or raw bench_main "
                             "output) to compute speedups against")
    parser.add_argument("--mintime", type=float, default=0.5,
                        help="min wall seconds per micro bench")
    parser.add_argument("--simtime", type=float, default=5000.0,
                        help="simulated seconds per full_sim probe")
    parser.add_argument("--max-allocs", type=float, default=0.0,
                        help="max steady-state allocations per event/item "
                             "before the gate fails (default 0)")
    parser.add_argument("--skip-google-bench", action="store_true",
                        help="only run bench_main (e.g. when "
                             "libbenchmark is unavailable)")
    args = parser.parse_args()

    kernel = run_bench_main(args.build, args.mintime, args.simtime)
    benches = list(kernel.get("benches", []))

    micro = []
    if not args.skip_google_bench:
        micro = run_google_micro(args.build, "bench_micro_sim", args.mintime)

    baseline = load_baseline(args.baseline) if args.baseline else {}
    for row in benches:
        before = baseline.get(row["name"], {})
        for metric in RATE_METRICS:
            if metric in row and before.get(metric):
                row["speedup"] = row[metric] / before[metric]

    report = {
        "schema": "mci-bench-kernel-v1",
        "benches": benches,
        "google_benchmark": [
            {
                "name": b.get("name"),
                "items_per_second": b.get("items_per_second"),
                "sim_s_per_s": b.get("sim_s_per_s"),
                "real_time_ns": b.get("real_time"),
            }
            for b in micro
        ],
        "baseline": str(args.baseline) if args.baseline else None,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"bench_report: wrote {args.out}", file=sys.stderr)

    # The allocation gate: the kernel benches must not allocate in steady
    # state. full_sim allocs are informational (reports, metric series).
    failures = []
    for row in benches:
        for key in ("allocs_per_item_steady", "allocs_per_event_steady"):
            if key in row and row[key] > args.max_allocs:
                failures.append(f"{row['name']}: {key} = {row[key]:.4g} "
                                f"(max {args.max_allocs:g})")
    if failures:
        print("bench_report: allocation gate FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("bench_report: allocation gate passed "
          f"(<= {args.max_allocs:g} allocs/event)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Perf-regression report: run the bench suites, merge baselines, and
enforce the steady-state allocation and live hot-path gates.

Drives `bench_main` (the standalone JSON emitter in bench/) and optionally
the google-benchmark micro binaries, then writes a single BENCH_kernel.json
summarising items/sec, simulated-seconds-per-wall-second, and
allocations-per-event. When `--baseline` points at a previous report (or a
raw bench_main dump), each metric gains a `speedup` field computed against
it, so a perf regression is visible as speedup < 1 in review.

With `--live-out` it additionally drives `bench_live` (schema
"mci-bench-live-v1": word-at-a-time codec speedups, sendmmsg fan-out
syscall counts, loopback server+pool latency percentiles) and enforces the
live gates: machine-independent ratios (speedup_vs_bitloop on the BS
codec, syscall_reduction on the fan-out) must clear their hard floors and
must not regress more than --gate-tolerance (default 15%) against
`--live-baseline` (the committed BENCH_live.json). Wall-clock metrics are
reported but never gated — only ratios and counts survive a runner change.

Exit status:
  0  report(s) written, all gates passed
  1  allocation gate or a live ratio gate failed
  2  usage or subprocess error

Typical use (see docs/performance.md):

    cmake --preset release && cmake --build --preset release -j
    python3 tools/bench_report.py --build build-release --out BENCH_kernel.json
    python3 tools/bench_report.py --build build-release \\
        --live-out BENCH_live.json --live-baseline BENCH_live.json

CI (`bench-smoke`, `bench-live-smoke`) runs the same with `--mintime 0.05`
and a short `--simtime` so the gates stay cheap.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


def run_bench_binary(build: Path, name: str, mintime: float,
                     simtime: float) -> dict:
    """Runs one of the standalone JSON emitters (bench_main, bench_live);
    both speak the same --mintime/--simtime flags and row shape."""
    exe = build / "bench" / name
    if not exe.exists():
        sys.exit(f"bench_report: {exe} not found — build the repo first")
    cmd = [str(exe), "--mintime", str(mintime), "--simtime", str(simtime)]
    print("bench_report: running", " ".join(cmd), file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(f"bench_report: {name} failed ({proc.returncode})")
    return json.loads(proc.stdout)


def run_google_micro(build: Path, name: str, min_time: float) -> list[dict]:
    """Runs a google-benchmark binary, tolerating both the old plain-double
    and the new duration-suffixed --benchmark_min_time syntax."""
    exe = build / "bench" / name
    if not exe.exists():
        print(f"bench_report: {exe} not found; skipping", file=sys.stderr)
        return []
    for arg in (f"--benchmark_min_time={min_time}s",
                f"--benchmark_min_time={min_time}"):
        cmd = [str(exe), arg, "--benchmark_format=json"]
        print("bench_report: running", " ".join(cmd), file=sys.stderr)
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 0:
            try:
                return json.loads(proc.stdout).get("benchmarks", [])
            except json.JSONDecodeError:
                break
    print(f"bench_report: {name} failed under both min_time syntaxes; "
          "skipping", file=sys.stderr)
    return []


def run_swarm(build: Path, clients: int, simtime: float,
              timescale: float, reshard: bool = False) -> list[dict]:
    """Runs the mci_swarm harness (swarm emulator vs equivalent-seed
    ClientPool) in its committed gate configuration and returns its bench
    rows for the live report. The model knobs are pinned here so the
    hit_ratio_parity number is comparable across machines and runs: only
    population size, horizon and time scale are runner-adjustable. With
    ``reshard`` the run starts on 4 shards and grows to 6 live at 40% of
    the horizon (the "swarm-reshard/<clients>" row)."""
    exe = build / "src" / "mci_swarm"
    if not exe.exists():
        sys.exit(f"bench_report: {exe} not found — build the repo first")
    cmd = [str(exe),
           "--swarm-clients", str(clients),
           "--simtime", str(simtime),
           "--timescale", str(timescale),
           "--dbsize", "1000",
           "--bufferfrac", "0.1",
           "--hotcold",
           "--parity-agents", "8",
           "--seed", "7"]
    if reshard:
        cmd += ["--shards", "4", "--reshard"]
    print("bench_report: running", " ".join(cmd), file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(f"bench_report: mci_swarm failed ({proc.returncode})")
    return list(json.loads(proc.stdout).get("benches", []))


def load_baseline(path: Path) -> dict[str, dict[str, float]]:
    """Accepts either a previous BENCH_kernel.json or a raw bench_main dump;
    returns {bench name: {metric: value}}."""
    doc = json.loads(path.read_text())
    out: dict[str, dict[str, float]] = {}
    for row in doc.get("benches", []):
        name = row.get("name")
        if not name:
            continue
        out[name] = {
            k: v for k, v in row.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
    return out


# Metrics where larger is faster; speedup = after / before.
RATE_METRICS = ("items_per_s", "sim_s_per_wall_s")

# Live hot-path ratio gates: (bench name, metric) -> hard floor. These are
# machine-independent — in-run ratios against a reference implementation or
# kernel-entry counts — so they hold on any runner with sendmmsg. Each is
# additionally held to within --gate-tolerance of the committed baseline.
LIVE_GATES = {
    ("encode_bs/65536", "speedup_vs_bitloop"): 3.0,
    ("encode_sig/1024", "speedup_vs_bitloop"): 1.5,
    ("udp_fanout/64", "syscall_reduction"): 5.0,
    ("live_pool/64", "udp_syscall_reduction"): 5.0,
}


def check_live_gates(benches: list[dict],
                     baseline: dict[str, dict[str, float]],
                     tolerance: float) -> list[str]:
    failures = []
    rows = {row.get("name"): row for row in benches}
    for (name, metric), floor in LIVE_GATES.items():
        row = rows.get(name)
        if row is None or metric not in row:
            failures.append(f"{name}: {metric} missing from bench_live output")
            continue
        value = row[metric]
        if value < floor:
            failures.append(
                f"{name}: {metric} = {value:.3g} below hard floor {floor:g}")
        before = baseline.get(name, {}).get(metric)
        if before and value < before * (1.0 - tolerance):
            failures.append(
                f"{name}: {metric} = {value:.3g} regressed >"
                f"{tolerance:.0%} vs baseline {before:.3g}")
    return failures


# Swarm fidelity gates, applied to every "swarm/<clients>" and
# "swarm-reshard/<clients>" row. All three are machine-independent: parity
# is a ratio of two hit ratios from the same process, allocations are
# counted per client-tick, and stale reads are audited against the
# in-process authoritative databases. Reshard rows additionally prove the
# epoch switch actually happened and hold the post-switch AoI tail against
# their baseline (the transition must not leave clients serving old news).
SWARM_PARITY_FLOOR = 0.85        # min(hit)/max(hit) vs the agent pool
SWARM_MAX_ALLOCS_PER_TICK = 0.01  # steady-state mux-callback allocations
SWARM_BASELINE_METRICS = ("hit_ratio_parity", "clients_per_s")
SWARM_RESHARD_BASELINE_METRICS = ("hit_ratio_parity", "hit_ratio_tail")


def check_swarm_gates(benches: list[dict],
                      baseline: dict[str, dict[str, float]],
                      tolerance: float) -> list[str]:
    failures = []
    for row in benches:
        name = row.get("name", "")
        reshard = name.startswith("swarm-reshard/")
        if not name.startswith("swarm/") and not reshard:
            continue
        parity = row.get("hit_ratio_parity", 0.0)
        if parity < SWARM_PARITY_FLOOR:
            failures.append(
                f"{name}: hit_ratio_parity = {parity:.3f} below floor "
                f"{SWARM_PARITY_FLOOR:g}")
        allocs = row.get("allocs_per_client_tick", -1.0)
        if allocs < 0 or allocs > SWARM_MAX_ALLOCS_PER_TICK:
            failures.append(
                f"{name}: allocs_per_client_tick = {allocs:.4g} "
                f"(max {SWARM_MAX_ALLOCS_PER_TICK:g})")
        if row.get("stale_reads", 0) != 0:
            failures.append(f"{name}: stale_reads = {row['stale_reads']:g}")
        if reshard:
            if row.get("epoch_switches", 0) < 1:
                failures.append(f"{name}: epoch_switches = "
                                f"{row.get('epoch_switches', 0):g} (the map "
                                f"flip never reached the swarm)")
            if row.get("shards_final", 0) <= row.get("shards", 0):
                failures.append(f"{name}: shards_final = "
                                f"{row.get('shards_final', 0):g} did not "
                                f"grow past {row.get('shards', 0):g}")
            # aoi_p99 is a latency: lower is better, so the regression
            # check inverts (a rise past tolerance fails).
            aoi = row.get("aoi_p99_ms", 0.0)
            aoi_before = baseline.get(name, {}).get("aoi_p99_ms")
            if aoi_before and aoi > aoi_before * (1.0 + tolerance):
                failures.append(
                    f"{name}: aoi_p99_ms = {aoi:.3g} regressed >"
                    f"{tolerance:.0%} vs baseline {aoi_before:.3g}")
        metrics = (SWARM_RESHARD_BASELINE_METRICS if reshard
                   else ("hit_ratio_parity",))
        for metric in metrics:
            value = row.get(metric, 0.0)
            before = baseline.get(name, {}).get(metric)
            if before and value < before * (1.0 - tolerance):
                failures.append(
                    f"{name}: {metric} = {value:.3f} regressed >"
                    f"{tolerance:.0%} vs baseline {before:.3f}")
    return failures


def check_alloc_gate(benches: list[dict], max_allocs: float) -> list[str]:
    """Kernel and live steady-state loops must not allocate."""
    failures = []
    for row in benches:
        for key in ("allocs_per_item_steady", "allocs_per_event_steady"):
            if key in row and row[key] > max_allocs:
                failures.append(f"{row['name']}: {key} = {row[key]:.4g} "
                                f"(max {max_allocs:g})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--build", type=Path, default=Path("build"),
                        help="build directory containing bench/ binaries")
    parser.add_argument("--out", type=Path, default=Path("BENCH_kernel.json"))
    parser.add_argument("--baseline", type=Path, default=None,
                        help="previous BENCH_kernel.json (or raw bench_main "
                             "output) to compute speedups against")
    parser.add_argument("--mintime", type=float, default=0.5,
                        help="min wall seconds per micro bench")
    parser.add_argument("--simtime", type=float, default=5000.0,
                        help="simulated seconds per full_sim probe")
    parser.add_argument("--max-allocs", type=float, default=0.0,
                        help="max steady-state allocations per event/item "
                             "before the gate fails (default 0)")
    parser.add_argument("--skip-google-bench", action="store_true",
                        help="only run bench_main (e.g. when "
                             "libbenchmark is unavailable)")
    parser.add_argument("--live-out", type=Path, default=None,
                        help="also run bench_live and write its report "
                             "here (enables the live ratio gates)")
    parser.add_argument("--live-baseline", type=Path, default=None,
                        help="previous BENCH_live.json to hold the gated "
                             "ratios against")
    parser.add_argument("--live-simtime", type=float, default=300.0,
                        help="model seconds for the live_pool probe")
    parser.add_argument("--gate-tolerance", type=float, default=0.15,
                        help="allowed relative regression on gated live "
                             "ratios vs --live-baseline (default 0.15)")
    parser.add_argument("--skip-kernel", action="store_true",
                        help="only run the live suite (requires --live-out)")
    parser.add_argument("--swarm", action="store_true",
                        help="also run mci_swarm (swarm-vs-pool parity and "
                             "allocs-per-client-tick gates); the row is "
                             "merged into the --live-out report")
    parser.add_argument("--swarm-clients", type=int, default=100000,
                        help="emulated swarm population (default 100000)")
    parser.add_argument("--swarm-simtime", type=float, default=2400.0,
                        help="model seconds for the swarm and parity "
                             "phases (default 2400)")
    parser.add_argument("--swarm-timescale", type=float, default=60.0,
                        help="model seconds per wall second (default 60)")
    parser.add_argument("--swarm-reshard", action="store_true",
                        help="also run the live 4->6 shard grow under the "
                             "swarm (epoch-switch parity, stale and AoI "
                             "gates); merged into the --live-out report")
    parser.add_argument("--swarm-reshard-clients", type=int, default=50000,
                        help="population for the reshard run (default "
                             "50000)")
    args = parser.parse_args()
    if args.skip_kernel and not args.live_out:
        parser.error("--skip-kernel requires --live-out")
    if (args.swarm or args.swarm_reshard) and not args.live_out:
        parser.error("--swarm/--swarm-reshard requires --live-out")

    benches: list[dict] = []
    if not args.skip_kernel:
        kernel = run_bench_binary(args.build, "bench_main", args.mintime,
                                  args.simtime)
        benches = list(kernel.get("benches", []))

    micro = []
    if not args.skip_kernel and not args.skip_google_bench:
        micro = run_google_micro(args.build, "bench_micro_sim", args.mintime)

    live_benches: list[dict] = []
    live_baseline: dict[str, dict[str, float]] = {}
    if args.live_out:
        live = run_bench_binary(args.build, "bench_live", args.mintime,
                                args.live_simtime)
        live_benches = list(live.get("benches", []))
        if args.swarm:
            live_benches += run_swarm(args.build, args.swarm_clients,
                                      args.swarm_simtime,
                                      args.swarm_timescale)
        if args.swarm_reshard:
            live_benches += run_swarm(args.build,
                                      args.swarm_reshard_clients,
                                      args.swarm_simtime,
                                      args.swarm_timescale, reshard=True)
        if args.live_baseline and args.live_baseline.exists():
            live_baseline = load_baseline(args.live_baseline)

    baseline = load_baseline(args.baseline) if args.baseline else {}
    for rows, base in ((benches, baseline), (live_benches, live_baseline)):
        for row in rows:
            before = base.get(row["name"], {})
            for metric in RATE_METRICS:
                if metric in row and before.get(metric):
                    row["speedup"] = row[metric] / before[metric]

    if not args.skip_kernel:
        report = {
            "schema": "mci-bench-kernel-v1",
            "benches": benches,
            "google_benchmark": [
                {
                    "name": b.get("name"),
                    "items_per_second": b.get("items_per_second"),
                    "sim_s_per_s": b.get("sim_s_per_s"),
                    "real_time_ns": b.get("real_time"),
                }
                for b in micro
            ],
            "baseline": str(args.baseline) if args.baseline else None,
        }
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"bench_report: wrote {args.out}", file=sys.stderr)

    if args.live_out:
        live_report = {
            "schema": "mci-bench-live-v1",
            "benches": live_benches,
            "baseline": str(args.live_baseline)
            if args.live_baseline else None,
        }
        args.live_out.write_text(json.dumps(live_report, indent=2) + "\n")
        print(f"bench_report: wrote {args.live_out}", file=sys.stderr)

    # The allocation gate: the kernel benches must not allocate in steady
    # state. full_sim allocs are informational (reports, metric series).
    failures = check_alloc_gate(benches + live_benches, args.max_allocs)
    if args.live_out:
        failures += check_live_gates(live_benches, live_baseline,
                                     args.gate_tolerance)
    if args.swarm:
        failures += check_swarm_gates(live_benches, live_baseline,
                                      args.gate_tolerance)
    if failures:
        print("bench_report: gates FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    gates = "allocation gate"
    if args.live_out:
        gates += " + live ratio gates"
    print(f"bench_report: {gates} passed "
          f"(<= {args.max_allocs:g} allocs/event)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

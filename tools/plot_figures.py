#!/usr/bin/env python3
"""Plot the reproduced paper figures from the bench CSV outputs.

Usage:
    ./build/bench/bench_all_figures --outdir results
    python3 tools/plot_figures.py results [outdir]

Reads results/figNN.csv (as written by bench_all_figures or any figure
bench's --csv output redirected to a file) and writes one PNG per figure.
Requires matplotlib; exits with a friendly message if it is unavailable.
"""

import csv
import pathlib
import sys


def main() -> int:
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is not installed; install it or use the CSV/JSON "
              "outputs directly.", file=sys.stderr)
        return 1

    indir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    outdir = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else indir)
    outdir.mkdir(parents=True, exist_ok=True)

    count = 0
    for path in sorted(indir.glob("fig*.csv")):
        with path.open() as f:
            rows = list(csv.reader(f))
        if len(rows) < 2:
            continue
        header, data = rows[0], rows[1:]
        xs = [float(r[0]) for r in data]
        fig, ax = plt.subplots(figsize=(6, 4))
        for col in range(1, len(header)):
            if header[col].endswith(" sd"):
                continue  # replication spread: drawn as error bars below
            ys = [float(r[col]) for r in data]
            sd_col = None
            if col + 1 < len(header) and header[col + 1] == header[col] + " sd":
                sd_col = col + 1
            if sd_col is not None:
                sds = [float(r[sd_col]) for r in data]
                ax.errorbar(xs, ys, yerr=sds, marker="o", capsize=3,
                            label=header[col])
            else:
                ax.plot(xs, ys, marker="o", label=header[col])
        ax.set_xlabel(header[0])
        ax.set_title(path.stem)
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=8)
        fig.tight_layout()
        out = outdir / (path.stem + ".png")
        fig.savefig(out, dpi=120)
        plt.close(fig)
        print(f"wrote {out}")
        count += 1
    if count == 0:
        print(f"no fig*.csv files found in {indir}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env bash
# Runs clang-tidy (config: repo-root .clang-tidy) over the library sources.
#
#   tools/run_clang_tidy.sh [build-dir] [file...]
#
#   build-dir  a configured build tree containing compile_commands.json
#              (default: build; every CMake preset exports one).
#   file...    restrict the run to these files (CI passes the changed set);
#              default is every .cpp under src/.
#
# Environment:
#   CLANG_TIDY   clang-tidy binary to use (default: first of clang-tidy,
#                clang-tidy-19..14 found on PATH).
#   MCI_TIDY_STRICT=1  missing clang-tidy is an error instead of a skip
#                (CI sets this so the gate cannot silently vanish).
#
# Exit: 0 clean or skipped, 1 findings (WarningsAsErrors promotes every
# warning), 2 setup error.

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
[ $# -gt 0 ] && shift

find_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    command -v "$CLANG_TIDY" && return 0
    return 1
  fi
  local c
  for c in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
           clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    command -v "$c" && return 0
  done
  return 1
}

tidy_bin="$(find_tidy)" || {
  if [ "${MCI_TIDY_STRICT:-0}" = "1" ]; then
    echo "run_clang_tidy: clang-tidy not found and MCI_TIDY_STRICT=1" >&2
    exit 2
  fi
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (set" \
       "MCI_TIDY_STRICT=1 to make this an error)" >&2
  exit 0
}

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing —" \
       "configure first (e.g. cmake --preset dev && use build-dev)" >&2
  exit 2
fi

if [ $# -gt 0 ]; then
  files=("$@")
else
  mapfile -t files < <(find "$repo_root/src" -name '*.cpp' | sort)
fi
[ "${#files[@]}" -gt 0 ] || { echo "run_clang_tidy: nothing to check"; exit 0; }

jobs="$(nproc 2>/dev/null || echo 2)"
echo "run_clang_tidy: $tidy_bin, ${#files[@]} file(s), -j$jobs"

printf '%s\0' "${files[@]}" |
  xargs -0 -n 1 -P "$jobs" "$tidy_bin" -p "$build_dir" --quiet
status=$?

if [ $status -eq 0 ]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above (WarningsAsErrors: '*')" >&2
  status=1
fi
exit $status

#!/usr/bin/env python3
"""Determinism lint: reject nondeterminism sources in src/ and bench/.

Every figure this repository emits must be bit-reproducible per seed
(ROADMAP.md), so the production sources may not read entropy or wall-clock
time, and may not let hash-table iteration order leak into results. This
lint enforces that mechanically; it runs as the `lint_determinism` CTest
and as a CI step, so a violation fails the build.

Banned patterns
---------------
1. C `rand()` / `srand()` / `random()` anywhere.
2. `std::random_device` outside src/sim/random.* (the one sanctioned
   entropy wrapper location — currently it uses none).
3. `std::chrono::*_clock::now()` outside the wall-time allowlist
   (bench harness timing of *host* runtime is legitimate; simulated time
   must come from sim::Simulator).
4. `std::mt19937` / `std::mt19937_64` outside src/sim/random.* — all
   simulation randomness flows through sim::Rng so streams are explicitly
   seeded and fork()-decorrelated.

The former rule 5 (range-for over unordered containers) moved to the
AST-based `ordered-iteration` rule in tools/analyze/mci_analyze.py, which
sees through typedefs, auto, and members declared in other headers where
the old per-file regex could not. This script stays as the zero-dependency
fallback for the remaining token-level rules — they need no type
information, so regexes are exact for them. See docs/analysis.md.

Suppressions
------------
Append to the offending line (or the line above it):

    // NOLINT-DETERMINISM(<reason>)

A reason is mandatory; bare `NOLINT-DETERMINISM` is itself an error.

Exit status: 0 = clean, 1 = violations found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "bench")
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}

# Files allowed to construct raw engines / touch entropy primitives.
RNG_ALLOWLIST = ("src/sim/random.hpp", "src/sim/random.cpp")
# Files allowed to read host clocks (wall-time measurement of the harness
# itself, never of simulated quantities).
WALLTIME_ALLOWLIST = ("src/metrics/walltime.hpp", "src/metrics/walltime.cpp")

SUPPRESS_OK = re.compile(r"NOLINT-DETERMINISM\(.+\)")
SUPPRESS_BARE = re.compile(r"NOLINT-DETERMINISM(?!\()")

SIMPLE_RULES = [
    # (regex on comment-stripped code, allowlist, message)
    (
        re.compile(r"(?<![\w:])s?rand(om)?\s*\("),
        (),
        "C rand()/srand()/random() is banned; use sim::Rng with an explicit seed",
    ),
    (
        re.compile(r"std\s*::\s*random_device"),
        RNG_ALLOWLIST,
        "std::random_device outside src/sim/random.* breaks seed reproducibility",
    ),
    (
        re.compile(r"std\s*::\s*chrono\s*::\s*\w*_clock\s*::\s*now"),
        WALLTIME_ALLOWLIST,
        "host clock reads are banned outside the wall-time allowlist; "
        "simulated time comes from sim::Simulator",
    ),
    (
        re.compile(r"std\s*::\s*mt19937(_64)?\b"),
        RNG_ALLOWLIST,
        "raw std::mt19937 outside src/sim/random.* — route randomness "
        "through sim::Rng so every stream is explicitly seeded",
    ),
]

def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string/char literals, keeping
    line structure so reported line numbers match the file."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def suppressed(raw_lines: list[str], lineno: int) -> bool:
    """True if line `lineno` (1-based) or the line above carries a reasoned
    suppression."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines) and SUPPRESS_OK.search(raw_lines[ln - 1]):
            return True
    return False


def lint_file(root: Path, path: Path) -> list[str]:
    rel = path.relative_to(root).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code = strip_comments(raw)
    code_lines = code.splitlines()
    errors = []

    for ln, raw_line in enumerate(raw_lines, start=1):
        if SUPPRESS_BARE.search(raw_line) and not SUPPRESS_OK.search(raw_line):
            errors.append(
                f"{rel}:{ln}: bare NOLINT-DETERMINISM — a reason is required: "
                "NOLINT-DETERMINISM(<why this is safe>)"
            )

    for pattern, allowlist, message in SIMPLE_RULES:
        if rel in allowlist:
            continue
        for ln, line in enumerate(code_lines, start=1):
            if pattern.search(line) and not suppressed(raw_lines, ln):
                errors.append(f"{rel}:{ln}: {message}")

    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        help="files to lint (default: every C++ file under src/ and bench/)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the lint's parent directory)",
    )
    args = parser.parse_args()
    root = args.root.resolve()

    if args.paths:
        files = []
        for p in args.paths:
            f = Path(p).resolve()
            if f.suffix in EXTENSIONS and f.is_file():
                files.append(f)
    else:
        files = [
            f
            for d in SCAN_DIRS
            for f in sorted((root / d).rglob("*"))
            if f.suffix in EXTENSIONS and f.is_file()
        ]
    if not files:
        print("lint_determinism: no files to scan", file=sys.stderr)
        return 2

    all_errors = []
    for f in files:
        try:
            rel_ok = f.is_relative_to(root)
        except AttributeError:  # < 3.9
            rel_ok = str(f).startswith(str(root))
        if not rel_ok:
            continue
        all_errors.extend(lint_file(root, f))

    if all_errors:
        print("\n".join(all_errors))
        print(
            f"\nlint_determinism: {len(all_errors)} violation(s) in "
            f"{len(files)} file(s). See docs/analysis.md for the rule list "
            "and suppression syntax.",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Loopback smoke driver for the live broadcast subsystem.

Starts one mci_live_server daemon (or, with --shards K > 1, an
mci_live_cluster of K sharded daemons), points an mci_live_client load
generator (N in-process agents) at it for a few simulated minutes of
compressed model time, and asserts the run was healthy end to end:

  * every agent completed the Hello/Welcome handshake,
  * queries completed and some of them were cache hits,
  * zero stale reads audited on either side (the paper's core invariant),
  * no connection was lost and both processes exited cleanly,
  * in sharded mode: the client learned the shard map and heard a nonzero
    IR stream from every shard, and every shard applied updates.

With --reshard (needs --shards > 1) the cluster additionally walks a
scripted grow -> rebalance -> shrink membership sequence mid-run while the
agents keep querying, and the driver asserts every epoch transition
completed, zero stale reads and zero dropped frames across all of them,
zero handoff failures, and that the client followed every epoch switch.

CI runs this against the release build; locally:

    python3 tools/live_load.py --build build-release
    python3 tools/live_load.py --build build-release --shards 3
    python3 tools/live_load.py --build build-release --shards 4 --reshard
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

# Model-second script for --reshard: grow 4 -> 6, reshuffle the hash law,
# shrink back to 4. Transitions must be spaced wider than the cutover
# grace window (0.5 wall s = timescale/2 model s) plus handoff time, or
# the later steps land while the earlier reshard is still in flight.
RESHARD_SCRIPT = "grow2@60,rebalance@150,shrink2@240"
RESHARD_MIN_DURATION = 400.0


def parse_kv(text: str) -> dict[str, str]:
    return dict(tok.split("=", 1)
                for line in text.splitlines()
                for tok in line.split() if "=" in tok)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build", help="CMake build directory")
    ap.add_argument("--scheme", default="AAW")
    ap.add_argument("--shards", type=int, default=1,
                    help="1 = single mci_live_server; K>1 = mci_live_cluster")
    ap.add_argument("--agents", type=int, default=8)
    ap.add_argument("--dbsize", type=int, default=500)
    ap.add_argument("--duration", type=float, default=600.0,
                    help="client run length in model seconds")
    ap.add_argument("--timescale", type=float, default=100.0,
                    help="model seconds per wall second")
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--reshard", action="store_true",
                    help="walk a scripted grow -> rebalance -> shrink "
                         "sequence mid-run (requires --shards > 1)")
    args = ap.parse_args()
    if args.reshard and args.shards <= 1:
        ap.error("--reshard requires --shards > 1")
    if args.reshard and args.duration < RESHARD_MIN_DURATION:
        ap.error(f"--reshard needs --duration >= {RESHARD_MIN_DURATION:g} "
                 f"(script runs through model second 240 plus grace)")

    build = pathlib.Path(args.build)
    sharded = args.shards > 1
    server_bin = build / "src" / ("mci_live_cluster" if sharded
                                  else "mci_live_server")
    client_bin = build / "src" / "mci_live_client"
    for b in (server_bin, client_bin):
        if not b.exists():
            print(f"error: {b} not built", file=sys.stderr)
            return 2

    # The server outlives the client by a margin so the client's shutdown is
    # clean (Bye over a live connection), then times out on its own. The
    # margin covers the client's late clock start: its model time begins at
    # the first Welcome, a beat after the daemon's.
    server_cmd = [
        str(server_bin),
        f"--scheme={args.scheme}",
        f"--clients={args.agents}",
        f"--dbsize={args.dbsize}",
        "--bufferfrac=0.1",
        f"--timescale={args.timescale}",
        f"--duration={args.duration + 300.0}",
        f"--seed={args.seed}",
    ]
    if sharded:
        server_cmd.insert(1, f"--shards={args.shards}")
    if args.reshard:
        server_cmd.append(f"--reshard={RESHARD_SCRIPT}")
    print("+", " ".join(server_cmd))
    server = subprocess.Popen(server_cmd, stdout=subprocess.PIPE, text=True)
    try:
        port_line = server.stdout.readline().strip()
        if not port_line.startswith("port="):
            print(f"error: expected port=..., got {port_line!r}",
                  file=sys.stderr)
            server.kill()
            return 1
        port = int(port_line.split("=", 1)[1])
        if sharded:
            # The cluster also announces the full port list; the client only
            # needs the seed port — the Welcome's shard map teaches the rest.
            ports_line = server.stdout.readline().strip()
            print(ports_line)

        # Hot/cold queries with a short think time: enough locality that a
        # few model minutes must produce cache hits.
        client_cmd = [
            str(client_bin),
            f"--port={port}",
            f"--agents={args.agents}",
            f"--duration={args.duration}",
            "--workload=HOTCOLD",
            "--think=10",
            f"--seed={args.seed}",
        ]
        print("+", " ".join(client_cmd))
        client = subprocess.run(client_cmd, stdout=subprocess.PIPE, text=True,
                                timeout=args.duration / args.timescale + 60)
        print(client.stdout, end="")

        server_out, _ = server.communicate(
            timeout=(args.duration + 400.0) / args.timescale + 60)
        print(server_out, end="")
    except subprocess.TimeoutExpired:
        print("error: timed out waiting for daemons", file=sys.stderr)
        server.kill()
        return 1

    failures = []
    if client.returncode != 0:
        failures.append(f"client exited {client.returncode}")
    if server.returncode != 0:
        failures.append(f"server exited {server.returncode}")

    stats = parse_kv(client.stdout or "")
    server_stats = parse_kv(server_out or "")
    checks = [
        ("welcomed", stats.get("welcomed") == str(args.agents)),
        ("queries > 0", int(stats.get("queries", 0)) > 0),
        ("hits > 0", int(stats.get("hits", 0)) > 0),
        ("client stale == 0", stats.get("stale") == "0"),
        ("no lost connections", stats.get("lost") == "0"),
        ("reports heard > 0", int(stats.get("reports_heard", 0)) > 0),
        ("server stale == 0", server_stats.get("stale") == "0"),
        ("server broadcast > 0", int(server_stats.get("reports", 0)) > 0),
    ]
    if sharded:
        checks.append(("client learned the shard map",
                       stats.get("shards") == str(args.shards)))
        heard = [int(n) for n in
                 stats.get("reports_per_shard", "").split(",") if n]
        checks.append(("client heard IRs from every shard",
                       len(heard) == args.shards and all(n > 0
                                                         for n in heard)))
        checks.append(("no misrouted items",
                       server_stats.get("misrouted") == "0"))
        for s in range(args.shards):
            checks.append(
                (f"shard {s} broadcast IRs and applied updates",
                 int(server_stats.get(f"shard{s}_reports", 0)) > 0 and
                 int(server_stats.get(f"shard{s}_updates", 0)) > 0))
    if args.reshard:
        # Per-transition announce lines are `epoch=N shards=K` alone on a
        # line; the final stats line spells epoch= mid-line and is not
        # matched. grow2 -> rebalance -> shrink2 from K shards must walk
        # epochs 2, 3, 4 through K+2, K+2, K shards — in that order.
        transitions = [(int(e), int(s)) for e, s in
                       re.findall(r"^epoch=(\d+) shards=(\d+)$",
                                  server_out or "", re.M)]
        expect = [(2, args.shards + 2), (3, args.shards + 2),
                  (4, args.shards)]
        checks += [
            ("all three epoch transitions completed in order",
             transitions == expect),
            ("no transition refused or overlapped",
             "reshard=busy" not in (server_out or "") and
             "reshard=refused" not in (server_out or "")),
            ("zero handoff failures",
             server_stats.get("handoff_failed") == "0"),
            ("items were handed off",
             int(server_stats.get("handoff_recv", 0)) > 0),
            ("map updates announced",
             int(server_stats.get("map_updates", 0)) > 0),
            ("zero dropped frames across transitions",
             server_stats.get("dropped") == "0"),
            ("client followed every epoch switch",
             stats.get("epoch_switches") == "3"),
        ]
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures.append(label)

    if failures:
        print("live smoke FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("live smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
